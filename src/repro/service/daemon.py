"""Stdlib-only asyncio HTTP/JSON front end for the campaign engine.

One localhost socket, hand-rolled HTTP/1.1 (no third-party deps, one
request per connection), JSON bodies.  The daemon itself is thin: every
route delegates to the :class:`repro.service.jobs.JobManager`, which
owns the engines, the shared in-flight registry, and the state
directory.  On start the daemon recovers any jobs a previous process
left unfinished.

Routes::

    GET  /health                  liveness + identity
    GET  /stats                   aggregate counters, coalescing totals
    GET  /jobs                    all job snapshots
    POST /jobs                    submit a JobSpec payload (202 + snapshot)
    GET  /jobs/<id>               one job snapshot
    POST /jobs/<id>/pause         pause at the next task boundary
    POST /jobs/<id>/resume        resume a paused job
    POST /jobs/<id>/cancel        cancel (CampaignCancelled at boundary)
    GET  /jobs/<id>/events        NDJSON progress stream (replay + live,
                                  close-delimited)
    GET  /jobs/<id>/manifest      the job's campaign manifest JSON

Errors are JSON too: ``{"error": ...}`` with 400 (bad spec / body),
404 (unknown job or route), 405, or 500.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobs import Job, JobManager, JobSpec, SpecError

__all__ = ["CampaignDaemon"]

#: Bounds on untrusted input; requests beyond these are rejected.
MAX_BODY = 1 << 20
MAX_HEADER_LINE = 8192
MAX_HEADERS = 64

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _BadRequest(Exception):
    """Malformed HTTP from the client; mapped to a 400 response."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class CampaignDaemon:
    """The ``repro serve`` daemon: HTTP in, campaign jobs out.

    Args:
        host: Bind address (keep it loopback; there is no auth).
        port: TCP port; ``0`` picks a free one (read :attr:`port` after
            :meth:`start`).
        cache_dir: Shared result-cache root for every job.
        state_dir: Job spec/journal/manifest directory; enables
            crash recovery across daemon restarts.
        engine_jobs: Worker processes per job engine (1 = each job runs
            serially in its own thread).
        salt: Cache-key salt override (tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: Optional[str] = None,
        state_dir: Optional[str] = None,
        engine_jobs: int = 1,
        salt: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.state_dir = state_dir
        self.engine_jobs = engine_jobs
        self.salt = salt
        self.manager: Optional[JobManager] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> List[Job]:
        """Bind the socket, recover persisted jobs, return them."""
        loop = asyncio.get_running_loop()
        self.manager = JobManager(
            loop,
            cache_root=self.cache_dir,
            state_dir=self.state_dir,
            engine_jobs=self.engine_jobs,
            salt=self.salt,
        )
        recovered = self.manager.recover()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return recovered

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point (the ``repro serve`` subcommand)."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        recovered = await self.start()
        print(f"repro service listening on http://{self.host}:{self.port}", flush=True)
        if recovered:
            print(f"recovered {len(recovered)} unfinished job(s): "
                  + ", ".join(j.id for j in recovered), flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serve = asyncio.ensure_future(self.serve_forever())
        try:
            await stop.wait()
        finally:
            serve.cancel()
            await self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond(writer, exc.status, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:  # pragma: no cover - client already gone
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict[str, Any]]]:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        if len(line) > MAX_HEADER_LINE:
            raise _BadRequest("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]

        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS):
            line = await reader.readline()
            if len(line) > MAX_HEADER_LINE:
                raise _BadRequest("header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")

        body: Optional[Dict[str, Any]] = None
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _BadRequest("bad Content-Length") from None
            if n > MAX_BODY:
                raise _BadRequest("request body too large", status=413)
            raw = await reader.readexactly(n) if n else b""
            if raw:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _BadRequest(f"request body is not JSON: {exc}") from None
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
    ) -> None:
        blob = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + blob)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
    ) -> None:
        manager = self.manager
        assert manager is not None
        parts = [p for p in path.split("/") if p]

        if parts == ["health"]:
            if method != "GET":
                return await self._respond(writer, 405, {"error": "GET only"})
            return await self._respond(
                writer, 200,
                {"ok": True, "service": "repro", "port": self.port},
            )

        if parts == ["stats"]:
            if method != "GET":
                return await self._respond(writer, 405, {"error": "GET only"})
            return await self._respond(writer, 200, manager.stats())

        if parts == ["jobs"]:
            if method == "GET":
                return await self._respond(
                    writer, 200, {"jobs": [j.snapshot() for j in manager.jobs()]}
                )
            if method == "POST":
                try:
                    spec = JobSpec.from_payload(body or {})
                except SpecError as exc:
                    return await self._respond(writer, 400, {"error": str(exc)})
                job = manager.submit(spec)
                return await self._respond(writer, 202, job.snapshot())
            return await self._respond(writer, 405, {"error": "GET or POST"})

        if len(parts) in (2, 3) and parts[0] == "jobs":
            try:
                job = manager.job(parts[1])
            except KeyError:
                return await self._respond(
                    writer, 404, {"error": f"unknown job {parts[1]!r}"}
                )
            action = parts[2] if len(parts) == 3 else None

            if action is None:
                if method != "GET":
                    return await self._respond(writer, 405, {"error": "GET only"})
                return await self._respond(writer, 200, job.snapshot())

            if action in ("pause", "resume", "cancel"):
                if method != "POST":
                    return await self._respond(writer, 405, {"error": "POST only"})
                getattr(manager, action)(job.id)
                return await self._respond(writer, 200, job.snapshot())

            if action == "events":
                if method != "GET":
                    return await self._respond(writer, 405, {"error": "GET only"})
                return await self._stream_events(writer, job)

            if action == "manifest":
                if method != "GET":
                    return await self._respond(writer, 405, {"error": "GET only"})
                return await self._send_manifest(writer, job)

        await self._respond(writer, 404, {"error": f"no route for {method} {path}"})

    # ------------------------------------------------------------------
    # Route bodies
    # ------------------------------------------------------------------
    async def _stream_events(self, writer: asyncio.StreamWriter, job: Job) -> None:
        """NDJSON progress stream: history replay, then live events.

        Close-delimited — the stream (and connection) ends when the job
        finishes and its broker closes.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        async for event in job.broker.subscribe():
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()

    async def _send_manifest(self, writer: asyncio.StreamWriter, job: Job) -> None:
        if job.manifest_path is None:
            return await self._respond(
                writer, 404, {"error": "daemon is stateless: no manifest persisted"}
            )
        try:
            manifest = json.loads(job.manifest_path.read_text())
        except FileNotFoundError:
            return await self._respond(
                writer, 404,
                {"error": f"manifest for {job.id} not written yet "
                          f"(job state: {job.state})"},
            )
        except json.JSONDecodeError as exc:
            return await self._respond(
                writer, 500, {"error": f"manifest unreadable: {exc}"}
            )
        return await self._respond(writer, 200, manifest)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "listening" if self._server is not None else "stopped"
        return f"<CampaignDaemon {state} on {self.host}:{self.port}>"
