"""Programmatic client for the campaign daemon.

Thin stdlib wrapper (``http.client``) over the daemon's JSON routes —
what the ``repro submit`` / ``repro jobs`` subcommands use, and what
tests drive the daemon with.  One connection per call; the event
stream holds its connection open and yields parsed NDJSON events until
the daemon closes it (job finished).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon answered with an error (or not at all).

    Attributes:
        status: HTTP status code, or ``None`` for transport failures.
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to a :class:`repro.service.daemon.CampaignDaemon`.

    Args:
        host: Daemon host.
        port: Daemon port.
        timeout: Socket timeout per request, seconds.  The event stream
            uses it per read, so pick it larger than the longest gap
            between task completions you expect to sit through.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8753,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach repro service at {self.host}:{self.port}: {exc}"
                ) from None
            try:
                decoded = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                decoded = None
            if response.status >= 400:
                detail = (decoded or {}).get("error") if isinstance(decoded, dict) \
                    else raw.decode(errors="replace").strip()
                raise ServiceError(
                    f"{method} {path} -> {response.status}: {detail}",
                    status=response.status,
                )
            return decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job spec (plain dict, see :class:`JobSpec.FIELDS`);
        returns the queued job's snapshot (``id``, ``state``, ...)."""
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def pause(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/resume")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def manifest(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/manifest")

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's progress events (history, then live).

        Blocks between events; terminates when the job finishes and the
        daemon closes the stream.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach repro service at {self.host}:{self.port}: {exc}"
                ) from None
            if response.status >= 400:
                raw = response.read()
                try:
                    detail = json.loads(raw).get("error")
                except (json.JSONDecodeError, AttributeError):
                    detail = raw.decode(errors="replace").strip()
                raise ServiceError(
                    f"GET /jobs/{job_id}/events -> {response.status}: {detail}",
                    status=response.status,
                )
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its
        final snapshot.  Raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("completed", "failed", "cancelled"):
                return snap
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {snap['state']!r} after {timeout}s"
                )
            time.sleep(poll)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ServiceClient {self.host}:{self.port}>"
