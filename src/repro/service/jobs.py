"""Job management for the campaign daemon.

A *job* is one client-submitted campaign: a validated
:class:`JobSpec` (benchmark × design matrix plus knobs) executed by a
dedicated :class:`repro.runner.CampaignEngine` in a worker thread.  The
:class:`JobManager` owns the shared pieces:

* one :class:`repro.runner.InflightRegistry` across every job's engine,
  so identical in-flight task keys coalesce to a single execution no
  matter which client submitted them;
* one result-cache *root* (each engine gets its own counter-isolated
  :class:`~repro.runner.cache.ResultCache` view over it);
* a state directory persisting each job's spec, journal and manifest,
  which is what lets a killed daemon :meth:`~JobManager.recover` its
  unfinished jobs on restart (resume = journal + cache replay).

Per-job control is the engine's own :class:`repro.runner.EngineControl`
(pause/resume at task boundaries, cancel via
:class:`repro.runner.CampaignCancelled`), and per-job progress events
flow through a :class:`repro.service.events.JobEventBroker` to any
number of streaming subscribers.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runner import (
    CampaignCancelled,
    CampaignEngine,
    EngineControl,
    InflightRegistry,
    ResultCache,
)
from repro.service.events import JobEventBroker
from repro.sim.config import GPUConfig
from repro.sim.designs import DESIGN_KEYS
from repro.sim.simulator import FIDELITIES
from repro.trace.suite import ALL_BENCHMARKS

__all__ = ["JOB_STATES", "Job", "JobManager", "JobSpec", "SpecError"]

#: Lifecycle states a job moves through (terminal: the last three).
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")
TERMINAL_STATES = ("completed", "failed", "cancelled")


class SpecError(ValueError):
    """A submitted job spec failed validation (HTTP 400 material)."""


class JobSpec:
    """Validated description of one campaign job.

    Args:
        benchmarks: Benchmark subset; ``None`` means the full Table-1
            suite.
        designs: Design keys to evaluate (the matrix's other axis).
        scale: Trace scale factor.
        seed: Trace generation seed.
        fidelity: ``"timing"`` or ``"functional"`` for simulate tasks.
        l1_size: L1 capacity in bytes.
        scheduler: Warp scheduler key.
        retries: Per-task failure budget for the job's engine.
        task_timeout: Per-attempt wall-clock budget (pool mode only).
        keep_going: Record failed tasks and finish instead of aborting.
    """

    FIELDS = ("benchmarks", "designs", "scale", "seed", "fidelity", "l1_size",
              "scheduler", "retries", "task_timeout", "keep_going")

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        designs: Sequence[str] = ("bs", "gc"),
        scale: float = 1.0,
        seed: int = 0,
        fidelity: str = "timing",
        l1_size: int = 32 * 1024,
        scheduler: str = "lrr",
        retries: int = 2,
        task_timeout: Optional[float] = None,
        keep_going: bool = False,
    ) -> None:
        self.benchmarks = (
            [str(b).upper() for b in benchmarks] if benchmarks else None
        )
        self.designs = [str(d).lower() for d in designs]
        self.scale = float(scale)
        self.seed = int(seed)
        self.fidelity = str(fidelity)
        self.l1_size = int(l1_size)
        self.scheduler = str(scheduler)
        self.retries = int(retries)
        self.task_timeout = float(task_timeout) if task_timeout is not None else None
        self.keep_going = bool(keep_going)
        self._validate()

    def _validate(self) -> None:
        if self.benchmarks is not None:
            bad = [b for b in self.benchmarks if b not in ALL_BENCHMARKS]
            if bad:
                raise SpecError(
                    f"unknown benchmarks: {bad}; known: {list(ALL_BENCHMARKS)}"
                )
        if not self.designs:
            raise SpecError("designs must not be empty")
        bad = [d for d in self.designs if d not in DESIGN_KEYS]
        if bad:
            raise SpecError(f"unknown designs: {bad}; known: {list(DESIGN_KEYS)}")
        if self.fidelity not in FIDELITIES:
            raise SpecError(
                f"unknown fidelity {self.fidelity!r}; known: {list(FIDELITIES)}"
            )
        if not (0 < self.scale <= 4.0):
            raise SpecError(f"scale must be in (0, 4], got {self.scale}")
        if self.retries < 0:
            raise SpecError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise SpecError(f"task_timeout must be > 0, got {self.task_timeout}")

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Build from a client JSON body, rejecting unknown fields."""
        if not isinstance(payload, dict):
            raise SpecError(f"job spec must be a JSON object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(cls.FIELDS))
        if unknown:
            raise SpecError(f"unknown spec fields: {unknown}; known: {list(cls.FIELDS)}")
        try:
            return cls(**payload)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid job spec: {exc}") from None

    def to_payload(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def config(self) -> GPUConfig:
        return GPUConfig(l1_size=self.l1_size, warp_scheduler=self.scheduler)

    def run(self, engine: CampaignEngine) -> None:
        """Execute the full matrix through ``engine`` (worker thread)."""
        from repro.experiments.common import EvalSuite

        suite = EvalSuite(
            config=self.config(),
            benchmarks=self.benchmarks,
            scale=self.scale,
            seed=self.seed,
            engine=engine,
            fidelity=self.fidelity,
        )
        suite.run_matrix(self.designs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        benches = ",".join(self.benchmarks) if self.benchmarks else "ALL"
        return f"<JobSpec {benches} x {','.join(self.designs)} @{self.scale}>"


class Job:
    """One submitted campaign and its runtime state."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        engine: CampaignEngine,
        broker: JobEventBroker,
        manifest_path: Optional[Path] = None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.engine = engine
        self.control: EngineControl = engine.control
        self.broker = broker
        self.manifest_path = manifest_path
        self.state = "queued"
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self.resumed = engine.resume

    @property
    def paused(self) -> bool:
        return self.control.paused

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view for ``/jobs`` responses and state files."""
        snap: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "paused": self.paused,
            "resumed": self.resumed,
            "spec": self.spec.to_payload(),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "counters": self.engine.counters.snapshot(),
            "failed_tasks": len(self.engine.failures),
        }
        if self.engine.cache is not None:
            snap["cache"] = self.engine.cache.counter_snapshot()
        return snap


class JobManager:
    """Submits, supervises and recovers campaign jobs.

    Args:
        loop: asyncio loop for event fan-out; ``None`` disables live
            subscription (polling still works).
        cache_root: Shared result-cache directory (``None`` = no
            persistent cache — coalescing still deduplicates in-flight
            work, but finished results are not reusable).
        state_dir: Daemon state directory (job specs, journals,
            manifests).  ``None`` disables persistence and recovery.
        engine_jobs: Worker processes per job engine (1 = serial in the
            job's thread — the default; the daemon's parallelism then
            comes from running jobs concurrently).
        salt: Cache-key salt override (tests).
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        *,
        cache_root: Optional[Union[str, os.PathLike]] = None,
        state_dir: Optional[Union[str, os.PathLike]] = None,
        engine_jobs: int = 1,
        salt: Optional[str] = None,
    ) -> None:
        self.loop = loop
        self.cache_root = Path(cache_root) if cache_root is not None else None
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.engine_jobs = engine_jobs
        self.salt = salt
        self.inflight = InflightRegistry()
        self.started_at = time.time()
        self._jobs: Dict[str, Job] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _jobs_dir(self) -> Optional[Path]:
        return self.state_dir / "jobs" if self.state_dir is not None else None

    def _state_path(self, job_id: str) -> Optional[Path]:
        d = self._jobs_dir()
        return d / f"{job_id}.json" if d is not None else None

    def _journal_path(self, job_id: str) -> Optional[Path]:
        d = self._jobs_dir()
        return d / f"{job_id}.journal.jsonl" if d is not None else None

    def _manifest_path(self, job_id: str) -> Optional[Path]:
        d = self._jobs_dir()
        return d / f"{job_id}.manifest.json" if d is not None else None

    # ------------------------------------------------------------------
    # Submission / execution
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        job_id: Optional[str] = None,
        resume: bool = False,
    ) -> Job:
        """Queue ``spec`` as a new job and start its worker thread.

        ``job_id``/``resume`` are the recovery path: a restarted daemon
        resubmits a persisted spec under its original id, resuming from
        its journal.
        """
        job_id = job_id if job_id is not None else f"j-{uuid.uuid4().hex[:8]}"
        with self._lock:
            if job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already exists")
            journal = self._journal_path(job_id)
            resume = bool(resume and journal is not None and journal.exists())
            cache = (
                ResultCache(self.cache_root) if self.cache_root is not None else None
            )
            broker = JobEventBroker(self.loop)
            engine_kwargs: Dict[str, Any] = dict(
                jobs=self.engine_jobs,
                cache=cache,
                retries=spec.retries,
                task_timeout=spec.task_timeout,
                keep_going=spec.keep_going,
                journal=journal,
                resume=resume,
                control=EngineControl(),
                progress=broker.publish,
                inflight=self.inflight,
                client=job_id,
                manifest_path=self._manifest_path(job_id),
            )
            if self.salt is not None:
                engine_kwargs["salt"] = self.salt
            engine = CampaignEngine(**engine_kwargs)
            job = Job(job_id, spec, engine, broker,
                      manifest_path=self._manifest_path(job_id))
            self._jobs[job_id] = job
            self._persist(job)
            thread = threading.Thread(
                target=self._run_job, args=(job,), name=f"repro-job-{job_id}",
                daemon=True,
            )
            self._threads[job_id] = thread
        thread.start()
        return job

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.broker.publish({"event": "job_state", "job": job.id,
                            "state": "running", "resumed": job.resumed})
        try:
            job.spec.run(job.engine)
        except CampaignCancelled:
            job.state = "cancelled"
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.state = "failed" if job.engine.failures else "completed"
            if job.engine.failures:
                job.error = str(job.engine.failures[0])
        finally:
            job.finished_at = time.time()
            if job.manifest_path is not None:
                try:
                    job.engine.write_manifest(job.manifest_path)
                except OSError:
                    pass
            self._persist(job)
            job.broker.publish({
                "event": "job_state", "job": job.id, "state": job.state,
                "error": job.error,
                "counters": job.engine.counters.snapshot(),
            })
            job.broker.close()

    # ------------------------------------------------------------------
    # Control / introspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def pause(self, job_id: str) -> Job:
        job = self.job(job_id)
        if not job.done:
            job.control.pause()
            job.broker.publish({"event": "job_state", "job": job.id,
                                "state": job.state, "paused": True})
        return job

    def resume(self, job_id: str) -> Job:
        job = self.job(job_id)
        if not job.done:
            job.control.resume()
            job.broker.publish({"event": "job_state", "job": job.id,
                                "state": job.state, "paused": False})
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.job(job_id)
        if not job.done:
            job.control.cancel()
        return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Join a job's worker thread (tests, synchronous clients)."""
        job = self.job(job_id)
        thread = self._threads.get(job_id)
        if thread is not None:
            thread.join(timeout)
        return job

    def wait_all(self, timeout: Optional[float] = None) -> None:
        deadline = time.monotonic() + timeout if timeout is not None else None
        for job_id in [j.id for j in self.jobs()]:
            left = None if deadline is None else max(0.0, deadline - time.monotonic())
            self.wait(job_id, left)

    def stats(self) -> Dict[str, Any]:
        """Aggregate service counters (the ``/stats`` payload)."""
        jobs = self.jobs()
        by_state: Dict[str, int] = {state: 0 for state in JOB_STATES}
        agg = {"tasks": 0, "unique_tasks": 0, "executed": 0, "cache_hits": 0,
               "coalesced": 0, "resumed": 0, "retries": 0, "failed": 0}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
            c = job.engine.counters
            agg["tasks"] += c.tasks
            agg["unique_tasks"] += c.unique_tasks
            agg["executed"] += c.executed
            agg["cache_hits"] += c.cache_hits
            agg["coalesced"] += c.coalesced
            agg["resumed"] += c.resumed
            agg["retries"] += c.retries
            agg["failed"] += c.failed
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": by_state,
            "counters": agg,
            "inflight_keys": len(self.inflight),
            "coalesced_total": self.inflight.coalesced_total,
            "cache_root": str(self.cache_root) if self.cache_root else None,
            "state_dir": str(self.state_dir) if self.state_dir else None,
        }

    # ------------------------------------------------------------------
    # Persistence / recovery
    # ------------------------------------------------------------------
    def _persist(self, job: Job) -> None:
        """Write the job's state file atomically (no-op when stateless)."""
        path = self._state_path(job.id)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(
            {"id": job.id, "state": job.state, "spec": job.spec.to_payload(),
             "submitted_at": job.submitted_at, "error": job.error},
            indent=2, sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def recover(self) -> List[Job]:
        """Resubmit every persisted job that never reached a terminal
        state — the daemon-restart path.

        Each recovered job resumes from its own journal: journaled
        tasks are served from the cache, only the remainder executes,
        so a kill -9 mid-job costs the in-flight attempt and nothing
        else.  Returns the recovered jobs (empty when stateless).
        """
        jobs_dir = self._jobs_dir()
        if jobs_dir is None or not jobs_dir.is_dir():
            return []
        recovered: List[Job] = []
        for state_file in sorted(jobs_dir.glob("j-*.json")):
            if state_file.name.endswith(".manifest.json"):
                continue
            try:
                record = json.loads(state_file.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # torn state write: the journal is authoritative,
                # but without a spec there is nothing to resubmit
            if not isinstance(record, dict):
                continue
            if record.get("state") in TERMINAL_STATES:
                continue
            try:
                spec = JobSpec.from_payload(record.get("spec") or {})
            except SpecError:
                continue
            job_id = record.get("id") or state_file.stem
            with self._lock:
                known = job_id in self._jobs
            if known:
                continue
            recovered.append(self.submit(spec, job_id=job_id, resume=True))
        return recovered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobManager {len(self._jobs)} jobs, {len(self.inflight)} in flight>"
