"""repro.service — simulation-as-a-service over the campaign engine.

The batch CLI runs one campaign and exits; this package turns the same
engine + cache + journal stack into a long-lived daemon many clients
hammer concurrently:

* :class:`~repro.service.jobs.JobManager` — submits client campaign
  specs as *jobs*, each running a :class:`repro.runner.CampaignEngine`
  in a worker thread with per-job pause/resume/cancel
  (:class:`repro.runner.EngineControl`), a per-job crash-safe journal,
  and progress events bridged onto asyncio subscribers.
* request coalescing — every job's engine shares one
  :class:`repro.runner.InflightRegistry`, so identical task keys in
  flight across jobs execute exactly once; the avoided executions are
  counted as *coalesced hits* in job manifests and ``/stats``.
* :class:`~repro.service.daemon.CampaignDaemon` — a stdlib-only asyncio
  HTTP/JSON front end on a localhost socket: submit/status/cancel,
  pause/resume, newline-delimited JSON event streams, ``/stats``.
* :class:`~repro.service.client.ServiceClient` — the programmatic
  client the ``repro submit`` / ``repro jobs`` CLI subcommands use.

Crash recovery: job specs and per-job journals live under the daemon's
state directory, so a killed daemon resumes its in-flight jobs on
restart (``JobManager.recover``) — journaled tasks are served from the
cache, only the genuinely unfinished remainder re-executes, and the
results are bit-identical to an uninterrupted run.

See ``docs/service.md`` for the API surface and lifecycle.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import CampaignDaemon
from repro.service.events import JobEventBroker
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobManager,
    JobSpec,
    SpecError,
)

__all__ = [
    "JOB_STATES",
    "CampaignDaemon",
    "Job",
    "JobEventBroker",
    "JobManager",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "SpecError",
]
