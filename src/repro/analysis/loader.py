"""Loading and validating campaign manifests for cross-run analysis.

Campaign manifests (:meth:`repro.runner.CampaignEngine.write_manifest`)
are the on-disk record of one evaluation campaign: engine counters,
resilience accounting, and one entry per task carrying the task's full
namespaced metrics snapshot.  This module turns a manifest file back
into typed objects the rest of :mod:`repro.analysis` can diff, without
ever importing the simulator — the analysis layer is strictly read-only
with respect to simulation.

Two manifest schema generations exist in the wild:

* **v1** (PRs 1–5): no ``schema_version`` field; task identity only in
  the ``label`` string (``simulate[functional]:SPMV/gc``).
* **v2**: adds ``schema_version``, ``git_commit`` and structured
  per-task ``kind``/``benchmark``/``design`` fields.

:func:`load_manifest` accepts both — v1 labels are parsed back into
structured fields, so comparisons across the schema boundary work.
Anything unreadable raises :class:`AnalysisError` with a message fit
for CLI consumption (the CLI maps it to a nonzero exit, never a
traceback).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.runner.engine import MANIFEST_SCHEMA_VERSION

__all__ = [
    "AnalysisError",
    "Manifest",
    "TaskRecord",
    "flatten_metrics",
    "load_manifest",
    "parse_label",
    "parse_manifest",
]


class AnalysisError(ValueError):
    """A manifest/ledger input could not be read or understood.

    Raised instead of bare ``OSError``/``JSONDecodeError`` so CLI entry
    points can catch one exception type and exit nonzero with the
    message — analysis error paths must never exit 0.
    """


def parse_label(label: str) -> Tuple[str, Optional[str], Optional[str], str]:
    """``(kind, benchmark, design, fidelity)`` from a v1 task label.

    Labels look like ``simulate:SPMV/gc``, ``simulate[functional]:X/gc``,
    ``replay:KMN/bs`` or ``pd-sweep:SPMV``.  Unparseable labels degrade
    to ``(label, None, None, "timing")`` rather than erroring — an old
    or foreign manifest should still load, just with less structure.
    """
    kind, sep, rest = label.partition(":")
    if not sep:
        return label, None, None, "timing"
    fidelity = "timing"
    if kind.endswith("]") and "[" in kind:
        kind, _, fid = kind[:-1].partition("[")
        fidelity = fid or "timing"
    name, sep, design = rest.partition("/")
    return kind, name or None, (design if sep else None), fidelity


def flatten_metrics(metrics: Mapping[str, Any]) -> Dict[str, Any]:
    """Flatten histogram sub-dicts into dotted scalar counters.

    Metrics snapshots are flat except for histograms, whose value is a
    summary dict (``{"count": ..., "mean": ..., ...}``).  Comparison
    wants one number per key, so ``core.load_latency`` becomes
    ``core.load_latency.count``, ``core.load_latency.mean``, ….  Scalar
    entries pass through bit-identically (no float formatting).
    """
    flat: Dict[str, Any] = {}
    for name in metrics:
        value = metrics[name]
        if isinstance(value, Mapping):
            for stat in value:
                flat[f"{name}.{stat}"] = value[stat]
        else:
            flat[name] = value
    return flat


@dataclass
class TaskRecord:
    """One task entry of a manifest, with structured identity fields."""

    label: str
    kind: str
    benchmark: Optional[str]
    design: Optional[str]
    fidelity: str
    key: str
    cached: bool
    seconds: float
    attempts: int
    failed: bool
    metrics: Optional[Dict[str, Any]] = None

    def flat_metrics(self) -> Dict[str, Any]:
        """Flattened metrics (see :func:`flatten_metrics`); ``{}`` if none."""
        if not self.metrics:
            return {}
        return flatten_metrics(self.metrics)


@dataclass
class Manifest:
    """A loaded campaign manifest, ready for comparison.

    Attributes:
        path: Source file, or ``None`` for in-memory manifests.
        raw: The manifest dict exactly as parsed (nothing dropped —
            round-tripping ``raw`` back to JSON preserves every byte of
            structure).
        schema_version: Declared version; ``1`` for pre-version files.
        git_commit: Commit recorded at campaign time, if any.
        salt: Code-version salt of the producing tree.
        generated_at: Manifest timestamp string.
        interrupted: The campaign was cut short (partial manifest).
        tasks: Per-task records in completion order.
    """

    path: Optional[Path]
    raw: Dict[str, Any]
    schema_version: int
    git_commit: Optional[str]
    salt: Optional[str]
    generated_at: Optional[str]
    interrupted: bool
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Short human name for report headings (file stem or commit)."""
        if self.path is not None:
            return self.path.stem
        if self.git_commit:
            return self.git_commit[:12]
        return "<manifest>"

    @property
    def counters(self) -> Dict[str, Any]:
        """The campaign-level counter snapshot (``{}`` when absent)."""
        counters = self.raw.get("counters")
        return counters if isinstance(counters, dict) else {}

    @property
    def cache_counters(self) -> Dict[str, Any]:
        """The cache section, including quarantine accounting."""
        cache = self.raw.get("cache")
        return cache if isinstance(cache, dict) else {}

    def groups(self) -> Dict[str, List[TaskRecord]]:
        """Completed tasks grouped by label, insertion-ordered.

        A label groups repeated runs of the same logical experiment
        (e.g. one ``simulate:SPMV/gc`` per seed) — the sample lists the
        significance tests operate on.  Failed tasks are excluded (they
        carry no metrics); the comparison layer reports them separately
        via :attr:`failed_labels`.
        """
        grouped: Dict[str, List[TaskRecord]] = {}
        for task in self.tasks:
            if task.failed:
                continue
            grouped.setdefault(task.label, []).append(task)
        return grouped

    @property
    def failed_labels(self) -> List[str]:
        """Labels of tasks that exhausted their retries, sorted."""
        return sorted({t.label for t in self.tasks if t.failed})


def _task_record(entry: Mapping[str, Any], index: int) -> TaskRecord:
    label = entry.get("label")
    if not isinstance(label, str):
        raise AnalysisError(f"task #{index} has no string 'label': {entry!r:.100}")
    p_kind, p_bench, p_design, p_fid = parse_label(label)
    metrics = entry.get("metrics")
    if metrics is not None and not isinstance(metrics, Mapping):
        raise AnalysisError(f"task {label!r} metrics is not an object")
    return TaskRecord(
        label=label,
        # v2 manifests carry structured fields; v1 falls back to the
        # parsed label so both schema generations compare identically.
        kind=entry.get("kind") or p_kind,
        benchmark=entry.get("benchmark") or p_bench,
        design=entry.get("design") if entry.get("design") is not None else p_design,
        fidelity=entry.get("fidelity") or p_fid,
        key=str(entry.get("key", "")),
        cached=bool(entry.get("cached", False)),
        seconds=float(entry.get("seconds", 0.0)),
        attempts=int(entry.get("attempts", 1)),
        failed=bool(entry.get("failed", False)),
        metrics=dict(metrics) if metrics is not None else None,
    )


def parse_manifest(
    raw: Any, path: Optional[Union[str, os.PathLike]] = None
) -> Manifest:
    """Validate a parsed manifest object; raises :class:`AnalysisError`."""
    where = str(path) if path is not None else "<in-memory manifest>"
    if not isinstance(raw, dict):
        raise AnalysisError(f"{where}: manifest root is not a JSON object")
    tasks = raw.get("tasks")
    if not isinstance(tasks, list):
        raise AnalysisError(
            f"{where}: no 'tasks' array — not a campaign manifest "
            f"(top-level keys: {sorted(raw)[:8]})"
        )
    version = raw.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise AnalysisError(f"{where}: bad schema_version {version!r}")
    if version > MANIFEST_SCHEMA_VERSION:
        # Newer manifests stay loadable (unknown fields ride along in
        # ``raw``); the analysis just won't use fields it doesn't know.
        pass
    return Manifest(
        path=Path(path) if path is not None else None,
        raw=raw,
        schema_version=version,
        git_commit=raw.get("git_commit"),
        salt=raw.get("salt"),
        generated_at=raw.get("generated_at"),
        interrupted=bool(raw.get("interrupted", False)),
        tasks=[_task_record(t, i) for i, t in enumerate(tasks)],
    )


def load_manifest(path: Union[str, os.PathLike]) -> Manifest:
    """Load and validate a campaign manifest file.

    Raises:
        AnalysisError: missing file, unreadable file, syntactically
            invalid JSON, or a JSON document that is not a campaign
            manifest.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read manifest {path}: {exc}") from exc
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"unparseable manifest {path}: {exc}") from exc
    return parse_manifest(raw, path)
