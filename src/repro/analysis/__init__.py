"""Cross-campaign analysis: manifest diffing, significance, the ledger.

This package consumes the artifacts the rest of the repository produces
— campaign manifests from :mod:`repro.runner.engine`, ``BENCH_*.json``
blobs from ``benchmarks/perf_suite.py`` — and turns them into regression
intelligence:

* :func:`load_manifest` / :class:`Manifest` — schema-tolerant manifest
  loading (v1 label-parsing fallback, v2 structured fields).
* :func:`compare_manifests` / :class:`ManifestComparison` — per-label,
  per-counter deltas with deterministic permutation-test verdicts.
* :func:`render_markdown` / :func:`render_html` — byte-stable reports.
* :class:`Ledger` — the append-only fsync'd JSONL perf/accuracy history
  with rolling-baseline drift gating.

The package is deliberately read-only with respect to simulation: it
never imports :mod:`repro.sim` and cannot perturb golden numbers.
"""

from repro.analysis.compare import (
    VERDICTS,
    CounterDelta,
    DesignSummary,
    LabelComparison,
    ManifestComparison,
    compare_manifests,
    counter_polarity,
)
from repro.analysis.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerCheck,
    host_fingerprint,
    make_record,
    record_from_bench,
    record_from_manifest,
)
from repro.analysis.loader import (
    AnalysisError,
    Manifest,
    TaskRecord,
    flatten_metrics,
    load_manifest,
    parse_label,
    parse_manifest,
)
from repro.analysis.report import render_html, render_markdown
from repro.analysis.significance import (
    bootstrap_mean_ci,
    deterministic_seed,
    mad,
    median,
    permutation_pvalue,
)

__all__ = [
    "AnalysisError",
    "CounterDelta",
    "DesignSummary",
    "LabelComparison",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerCheck",
    "Manifest",
    "ManifestComparison",
    "TaskRecord",
    "VERDICTS",
    "bootstrap_mean_ci",
    "compare_manifests",
    "counter_polarity",
    "deterministic_seed",
    "flatten_metrics",
    "host_fingerprint",
    "load_manifest",
    "mad",
    "make_record",
    "median",
    "parse_label",
    "parse_manifest",
    "permutation_pvalue",
    "record_from_bench",
    "record_from_manifest",
    "render_html",
    "render_markdown",
]
