"""Render a :class:`ManifestComparison` as markdown or standalone HTML.

Reports are **deterministic**: rendering never consults the clock, the
environment or dict iteration order, so the same pair of manifests
produces byte-identical output — CI can diff report artifacts across
runs, and the acceptance tests pin exactly that property.  All
tabulation goes through :class:`repro.stats.report.Table`, the same
builder behind the paper-figure harnesses, so comparison reports read
like the rest of the repository's outputs.
"""

from __future__ import annotations

from html import escape
from typing import List, Optional

from repro.analysis.compare import ManifestComparison
from repro.analysis.loader import Manifest
from repro.stats.report import Table

__all__ = ["render_html", "render_markdown"]


def _fmt(value: Optional[float]) -> str:
    """Stable scalar formatting: counts as ints, rates to 6 sig figs."""
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.6g}"


def _fmt_rel(rel: Optional[float]) -> str:
    return f"{100.0 * rel:+.2f}%" if rel is not None else "-"


def _fmt_p(p: Optional[float]) -> str:
    return f"{p:.4f}" if p is not None else "-"


def _meta_table(a: Manifest, b: Manifest) -> Table:
    table = Table(["", "A (baseline)", "B (candidate)"], title="Inputs")
    rows = [
        ("manifest", a.name, b.name),
        ("schema", str(a.schema_version), str(b.schema_version)),
        ("commit", a.git_commit or "-", b.git_commit or "-"),
        ("salt", a.salt or "-", b.salt or "-"),
        ("generated", a.generated_at or "-", b.generated_at or "-"),
        ("tasks", str(len(a.tasks)), str(len(b.tasks))),
        ("interrupted", str(a.interrupted).lower(), str(b.interrupted).lower()),
    ]
    for row in rows:
        table.row(list(row))
    return table


def _summary_table(cmp: ManifestComparison) -> Table:
    counts = cmp.verdict_counts()
    table = Table(["verdict", "counters"], title="Verdict summary")
    for verdict in ("improved", "regressed", "changed", "unchanged"):
        table.row([verdict, str(counts[verdict])])
    table.row(["new labels", str(counts["new"])])
    table.row(["missing labels", str(counts["missing"])])
    return table


def _design_table(cmp: ManifestComparison) -> Optional[Table]:
    summaries = cmp.design_summaries()
    if not summaries:
        return None
    table = Table(
        ["design", "benchmarks", "geomean IPC ratio (B/A)", "mean dL1 miss (pp)"],
        title="Per-design summary",
    )
    for s in summaries:
        table.row([
            s.design,
            str(s.benchmarks),
            f"{s.ipc_ratio:.4f}" if s.ipc_ratio is not None else "-",
            f"{s.miss_delta_pp:+.2f}" if s.miss_delta_pp is not None else "-",
        ])
    return table


def _regressions_table(cmp: ManifestComparison, top: int) -> Optional[Table]:
    regressions = cmp.top_regressions(top)
    if not regressions:
        return None
    table = Table(
        ["#", "experiment", "counter", "A", "B", "delta", "p"],
        title=f"Top regressions (worst {len(regressions)})",
    )
    for rank, (label, delta) in enumerate(regressions, 1):
        table.row([
            str(rank), label, delta.name, _fmt(delta.a), _fmt(delta.b),
            _fmt_rel(delta.rel_delta), _fmt_p(delta.p_value),
        ])
    return table


def _label_tables(cmp: ManifestComparison, include_unchanged: bool):
    """Yield ``(heading, note, table_or_None)`` per matched label."""
    for label in cmp.labels:
        if label.status != "matched":
            continue
        shown = [
            d for d in label.deltas
            if include_unchanged or d.verdict != "unchanged"
        ]
        omitted = len(label.deltas) - len(shown)
        heading = f"{label.label} ({label.n_a} vs {label.n_b} runs)"
        note = f"{omitted} unchanged counters omitted" if omitted else ""
        if not shown:
            yield heading, note or "all counters unchanged", None
            continue
        table = Table(["counter", "A", "B", "delta", "p", "verdict"])
        for d in shown:
            table.row([
                d.name, _fmt(d.a), _fmt(d.b), _fmt_rel(d.rel_delta),
                _fmt_p(d.p_value), d.verdict,
            ])
        yield heading, note, table


def _unmatched_lines(cmp: ManifestComparison) -> List[str]:
    lines = []
    for label in cmp.labels:
        if label.status == "new":
            lines.append(f"new in B: `{label.label}`")
        elif label.status == "missing":
            lines.append(f"missing from B: `{label.label}`")
    for label in cmp.failed_a:
        lines.append(f"failed in A (excluded): `{label}`")
    for label in cmp.failed_b:
        lines.append(f"failed in B (excluded): `{label}`")
    return lines


def render_markdown(
    cmp: ManifestComparison,
    top: int = 10,
    include_unchanged: bool = False,
) -> str:
    """The comparison as a GitHub-flavored markdown document."""
    parts: List[str] = [
        f"# Campaign comparison: {cmp.a.name} vs {cmp.b.name}",
        "",
        f"Significance level alpha = {cmp.alpha:g}; verdicts on "
        "repeated-run counters use a deterministic permutation test, "
        "singletons an exact-delta check.",
        "",
        _meta_table(cmp.a, cmp.b).to_markdown(),
        "",
        "## Summary",
        "",
        _summary_table(cmp).to_markdown(),
    ]
    design = _design_table(cmp)
    if design is not None:
        parts += ["", design.to_markdown()]
    regressions = _regressions_table(cmp, top)
    if regressions is not None:
        parts += ["", regressions.to_markdown()]
    unmatched = _unmatched_lines(cmp)
    if unmatched:
        parts += ["", "## Unmatched / failed", ""]
        parts += [f"- {line}" for line in unmatched]
    parts += ["", "## Per-benchmark counter deltas"]
    for heading, note, table in _label_tables(cmp, include_unchanged):
        parts += ["", f"### {heading}", ""]
        if table is not None:
            parts.append(table.to_markdown())
        if note:
            parts.append(f"_{note}_" if table is None else f"\n_{note}_")
    return "\n".join(parts) + "\n"


_CSS = """\
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
h1, h2, h3 { line-height: 1.25; }
table { border-collapse: collapse; margin: 1rem 0; }
caption { font-weight: 600; text-align: left; padding-bottom: .4rem; }
th, td { border: 1px solid #d7d7e0; padding: .3rem .6rem; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #f2f2f7; }
tr.rule td { border-left: none; border-right: none; background: #f2f2f7;
             height: 2px; padding: 0; }
td.v-improved { color: #0a6640; font-weight: 600; }
td.v-regressed { color: #a82a2a; font-weight: 600; }
td.v-changed { color: #8a5200; }
td.v-unchanged { color: #5c7080; }
.note { color: #5c7080; font-style: italic; }
"""


def _html_table(table: Table) -> str:
    html = table.to_html()
    # Tag verdict cells so the stylesheet can color them; the verdict is
    # always the last cell when the column is present.
    for verdict in ("improved", "regressed", "changed", "unchanged"):
        html = html.replace(
            f"<td>{verdict}</td></tr>", f'<td class="v-{verdict}">{verdict}</td></tr>'
        )
    return html


def render_html(
    cmp: ManifestComparison,
    top: int = 10,
    include_unchanged: bool = False,
) -> str:
    """The comparison as one self-contained HTML document.

    No external assets, no scripts — safe to attach as a CI artifact
    and open anywhere.  Deterministic byte-for-byte, like the markdown.
    """
    title = f"Campaign comparison: {cmp.a.name} vs {cmp.b.name}"
    body: List[str] = [
        f"<h1>{escape(title)}</h1>",
        f'<p class="note">alpha = {cmp.alpha:g}; repeated-run counters use a '
        "deterministic permutation test, singletons an exact-delta check.</p>",
        _html_table(_meta_table(cmp.a, cmp.b)),
        "<h2>Summary</h2>",
        _html_table(_summary_table(cmp)),
    ]
    design = _design_table(cmp)
    if design is not None:
        body.append(_html_table(design))
    regressions = _regressions_table(cmp, top)
    if regressions is not None:
        body.append(_html_table(regressions))
    unmatched = _unmatched_lines(cmp)
    if unmatched:
        body.append("<h2>Unmatched / failed</h2><ul>")
        body += [f"<li>{escape(line)}</li>" for line in unmatched]
        body.append("</ul>")
    body.append("<h2>Per-benchmark counter deltas</h2>")
    for heading, note, table in _label_tables(cmp, include_unchanged):
        body.append(f"<h3>{escape(heading)}</h3>")
        if table is not None:
            body.append(_html_table(table))
        if note:
            body.append(f'<p class="note">{escape(note)}</p>')
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{escape(title)}</title>\n<style>\n{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )
