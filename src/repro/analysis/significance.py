"""Deterministic resampling statistics for counter comparisons.

Comparing two campaigns means deciding, per counter, whether an observed
delta is *signal* (the design/commit changed the number) or *noise*
(seed-to-seed variation).  When a manifest carries repeated runs of the
same experiment — e.g. one ``simulate:SPMV/gc`` task per seed — the
per-label sample lists support a proper two-sample test; with singleton
samples the comparison layer falls back to exact-delta verdicts.

Everything here is **deterministic**: the Monte-Carlo fallbacks draw
from ``random.Random`` seeded by a SHA-256 of the caller-provided
context (label + counter name), never from global RNG state or time.
Same inputs → same p-values → byte-identical reports, which is what the
CI artifact diffing relies on.

The permutation test is exact (full enumeration over index subsets)
whenever the number of distinct group assignments fits the round
budget, so small-sample comparisons — the common case — have no
sampling error at all.
"""

from __future__ import annotations

import hashlib
import math
import random
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "bootstrap_mean_ci",
    "deterministic_seed",
    "mad",
    "median",
    "permutation_pvalue",
]


def deterministic_seed(*parts: object) -> int:
    """A stable 64-bit seed from arbitrary context values.

    ``repr`` of plain strings/numbers is stable across processes and
    Python versions (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(repr(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs)


def permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    rounds: int = 5000,
    seed: Optional[int] = None,
) -> Optional[float]:
    """Two-sided permutation test on the difference of means.

    Returns the probability, under the null of exchangeability, of a
    mean difference at least as extreme as observed — or ``None`` when
    either side has fewer than two samples (no test possible).

    Exact when :math:`\\binom{n_a+n_b}{n_a} \\le rounds` (full
    enumeration of group assignments); otherwise ``rounds`` Monte-Carlo
    permutations with the add-one correction
    :math:`p = (k+1)/(rounds+1)`, drawn from a ``random.Random`` seeded
    by ``seed`` — fully deterministic.
    """
    a, b = list(a), list(b)
    if len(a) < 2 or len(b) < 2:
        return None
    observed = abs(_mean(a) - _mean(b))
    pooled = a + b
    n, na = len(pooled), len(a)
    total = math.comb(n, na)
    if total <= rounds:
        # Exact test: every way of relabelling the pooled samples.
        hits = 0
        pooled_sum = sum(pooled)
        for idx in combinations(range(n), na):
            sum_a = sum(pooled[i] for i in idx)
            diff = abs(sum_a / na - (pooled_sum - sum_a) / (n - na))
            if diff >= observed - 1e-12:
                hits += 1
        return hits / total
    rng = random.Random(seed if seed is not None else deterministic_seed(a, b))
    hits = 0
    pooled_sum = sum(pooled)
    indices = list(range(n))
    for _ in range(rounds):
        chosen = rng.sample(indices, na)
        sum_a = sum(pooled[i] for i in chosen)
        diff = abs(sum_a / na - (pooled_sum - sum_a) / (n - na))
        if diff >= observed - 1e-12:
            hits += 1
    return (hits + 1) / (rounds + 1)


def bootstrap_mean_ci(
    samples: Sequence[float],
    rounds: int = 2000,
    alpha: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """Deterministic percentile bootstrap CI for the mean.

    With a single sample the interval collapses to that point.  The
    resampling RNG is seeded by ``seed`` (or a digest of the samples),
    so the interval is reproducible bit-for-bit.
    """
    samples = list(samples)
    if not samples:
        raise ValueError("bootstrap of an empty sample")
    if len(samples) == 1:
        return samples[0], samples[0]
    rng = random.Random(seed if seed is not None else deterministic_seed(samples))
    n = len(samples)
    means = sorted(
        _mean([samples[rng.randrange(n)] for _ in range(n)]) for _ in range(rounds)
    )
    lo = means[max(0, int((alpha / 2) * rounds) - 1)]
    hi = means[min(rounds - 1, int((1 - alpha / 2) * rounds))]
    return lo, hi


def median(values: Iterable[float]) -> float:
    """Median of a non-empty iterable (even lengths average the pair)."""
    ordered: List[float] = sorted(values)
    if not ordered:
        raise ValueError("median of an empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Iterable[float], center: Optional[float] = None) -> float:
    """Median absolute deviation — the ledger's robust noise estimate."""
    ordered = list(values)
    if not ordered:
        raise ValueError("MAD of an empty sequence")
    c = median(ordered) if center is None else center
    return median(abs(v - c) for v in ordered)
