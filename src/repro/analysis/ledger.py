"""The historical perf/accuracy ledger: one JSONL line per measurement.

The CI perf gate used to be a single same-machine threshold; the ledger
turns it into a queryable trajectory.  Every perf-suite run and campaign
appends one schema-versioned record — keyed by commit, host fingerprint,
fidelity and suite — and :meth:`Ledger.check` gates the newest record
against a **rolling baseline** (median of the trailing window) with
MAD-calibrated drift detection, so one noisy historical run cannot
poison the gate the way one stale static threshold can.

Records are append-only and fsync'd per line (the
:class:`repro.runner.journal.CampaignJournal` durability discipline): a
ledger write is the commit point for "this measurement happened", and a
torn trailing line from a killed process is skipped on load, never
treated as corruption.

Record layout (schema 1)::

    {"schema_version": 1, "kind": "perf", "suite": "perf-gate",
     "commit": "ab12…" | null, "fidelity": "timing" | null,
     "timestamp": "2026-08-08T12:00:00+0000",
     "host": {"id": "9f3c01d2e4b5", "platform": ..., "machine": ...,
              "python": ..., "cpus": 8},
     "metrics": {"SPMV/gc.normalized_cost": 103.2, ...},
     "meta": {...}}

Metric polarity (is a bigger number worse?) comes from
:func:`repro.analysis.compare.counter_polarity` — the same vocabulary
the manifest diff uses, so ``…normalized_cost`` gates as
lower-is-better and ``…ipc`` as higher-is-better with no per-call
configuration.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.analysis.compare import counter_polarity
from repro.analysis.loader import AnalysisError, flatten_metrics
from repro.analysis.significance import mad, median
from repro.runner.engine import git_commit
from repro.stats.report import Table

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerCheck",
    "host_fingerprint",
    "make_record",
    "record_from_bench",
    "record_from_manifest",
]

#: Ledger-record schema version; bump on layout changes.
LEDGER_SCHEMA_VERSION = 1

_HOST_CACHE: List[Dict[str, Any]] = []


def host_fingerprint() -> Dict[str, Any]:
    """Stable identity of the measuring host (cached per process).

    The ``id`` field is a short digest of the descriptive fields —
    enough to ask "same kind of machine?" without recording hostnames.
    """
    if not _HOST_CACHE:
        import hashlib
        import platform

        info: Dict[str, Any] = {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpus": os.cpu_count() or 1,
        }
        digest = hashlib.sha256(
            repr(sorted(info.items())).encode()
        ).hexdigest()[:12]
        info["id"] = digest
        _HOST_CACHE.append(info)
    return dict(_HOST_CACHE[0])


def make_record(
    suite: str,
    metrics: Mapping[str, Any],
    *,
    kind: str = "perf",
    fidelity: Optional[str] = None,
    commit: Optional[str] = None,
    host: Optional[Mapping[str, Any]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one schema-versioned ledger record (plain data)."""
    if not suite or not isinstance(suite, str):
        raise AnalysisError(f"ledger record needs a non-empty suite, got {suite!r}")
    if not isinstance(metrics, Mapping) or not metrics:
        raise AnalysisError("ledger record needs a non-empty metrics mapping")
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": kind,
        "suite": suite,
        "commit": commit if commit is not None else git_commit(),
        "fidelity": fidelity,
        "timestamp": timestamp
        if timestamp is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": dict(host) if host is not None else host_fingerprint(),
        "metrics": dict(metrics),
        "meta": dict(meta) if meta is not None else {},
    }


def record_from_bench(
    bench: Mapping[str, Any], suite: str = "perf-gate", **kw: Any
) -> Dict[str, Any]:
    """A ledger record from a ``BENCH_*.json``-shaped measurement blob.

    Keeps the machine-transferable numbers: ``normalized_cost`` per
    kernel/design (the calibrated metric the cross-machine gate uses)
    plus the functional-sweep speedups when present.
    """
    records = bench.get("records")
    if not isinstance(records, list) or not records:
        raise AnalysisError("bench blob has no 'records' array")
    metrics: Dict[str, Any] = {}
    for rec in records:
        key = f"{rec.get('benchmark')}/{rec.get('design')}"
        if "normalized_cost" in rec:
            metrics[f"{key}.normalized_cost"] = rec["normalized_cost"]
        if rec.get("mode") == "functional" and "speedup" in rec:
            metrics[f"{key}.speedup"] = rec["speedup"]
            phases = rec.get("phase_seconds")
            if isinstance(phases, Mapping):
                for phase, seconds in phases.items():
                    metrics[f"{key}.phase_seconds.{phase}"] = seconds
        if "best_seconds" in rec:
            metrics[f"{key}.best_seconds"] = rec["best_seconds"]
    return make_record(suite, metrics, kind="perf", **kw)


def record_from_manifest(
    manifest: Mapping[str, Any], suite: str = "campaign", **kw: Any
) -> Dict[str, Any]:
    """A ledger record from a campaign manifest dict.

    Captures the *accuracy* trajectory — per-experiment L1/L2 miss
    rates, bypass ratios and IPC — plus campaign health counters, so
    drift in simulated numbers across commits is as visible as drift in
    throughput.  Repeated labels are averaged.
    """
    tasks = manifest.get("tasks")
    if not isinstance(tasks, list):
        raise AnalysisError("manifest blob has no 'tasks' array")
    per_label: Dict[str, Dict[str, List[float]]] = {}
    for task in tasks:
        if not isinstance(task, Mapping) or task.get("failed"):
            continue
        metrics = task.get("metrics")
        label = task.get("label")
        if not isinstance(metrics, Mapping) or not isinstance(label, str):
            continue
        flat = flatten_metrics(metrics)
        instructions, cycles = flat.get("core.instructions"), flat.get("core.cycles")
        if isinstance(instructions, (int, float)) and cycles:
            flat["ipc"] = instructions / cycles
        bucket = per_label.setdefault(label, {})
        for name in (
            "ipc", "l1.miss_rate", "l1.bypass_ratio", "l2.miss_rate",
            "dram.row_hit_rate",
        ):
            value = flat.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                bucket.setdefault(name, []).append(float(value))
    metrics: Dict[str, Any] = {}
    for label in sorted(per_label):
        for name, values in sorted(per_label[label].items()):
            metrics[f"{label}.{name}"] = sum(values) / len(values)
    counters = manifest.get("counters")
    if isinstance(counters, Mapping):
        for name in ("task_seconds", "elapsed_seconds", "retries", "failed"):
            if name in counters:
                metrics[f"campaign.{name}"] = counters[name]
    if not metrics:
        raise AnalysisError("manifest carries no ledger-able metrics")
    fidelities = {
        t.get("fidelity") for t in tasks if isinstance(t, Mapping)
    } - {None}
    kw.setdefault("commit", manifest.get("git_commit"))
    return make_record(
        suite,
        metrics,
        kind="campaign",
        fidelity=sorted(fidelities)[0] if len(fidelities) == 1 else None,
        meta={"salt": manifest.get("salt"),
              "interrupted": bool(manifest.get("interrupted", False))},
        **kw,
    )


@dataclass
class LedgerCheck:
    """Outcome of gating one record against the rolling baseline."""

    suite: str
    window: int
    tolerance: float
    history: int
    checked: int = 0
    skipped: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)
    note: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        table = Table(
            ["metric", "value", "baseline", "ratio", "verdict"],
            title=f"Ledger check: suite {self.suite!r} "
            f"(window {self.window}, tolerance {self.tolerance:.0%})",
        )
        for f in self.failures:
            table.row([
                f["metric"], f"{f['value']:.6g}", f"{f['baseline']:.6g}",
                f"{f['ratio']:.3f}", "FAIL",
            ])
        lines = [table.render()] if self.failures else []
        status = "OK" if self.ok else "FAIL"
        lines.append(
            f"{status}: {self.checked} metrics checked against {self.history} "
            f"historical records, {len(self.failures)} regressed, "
            f"{self.skipped} skipped"
        )
        if self.note:
            lines.append(self.note)
        return "\n".join(lines)


class Ledger:
    """Append-only JSONL perf/accuracy ledger with trend queries."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Durably append one record; returns it as written.

        Open-append-fsync-close per record: appends are rare (one per
        CI run) and the ledger must survive the process dying on the
        next instruction.
        """
        if not isinstance(record, Mapping):
            raise AnalysisError(f"ledger record must be a mapping, got {type(record)}")
        if "schema_version" not in record or "suite" not in record:
            raise AnalysisError(
                "ledger record missing schema_version/suite — build it "
                "with make_record()/record_from_bench()/record_from_manifest()"
            )
        record = dict(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a+b") as fh:
            # A torn tail from a killed writer has no trailing newline;
            # terminate it first so the new record never glues onto it.
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(json.dumps(record, sort_keys=True).encode() + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(
        self,
        suite: Optional[str] = None,
        kind: Optional[str] = None,
        host_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """All parseable records, in append order, optionally filtered.

        A missing ledger file reads as empty (a fresh trajectory); a
        torn trailing line is skipped.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return []
        out: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if not isinstance(record, dict) or "metrics" not in record:
                continue
            if suite is not None and record.get("suite") != suite:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            if host_id is not None:
                host = record.get("host")
                if not isinstance(host, dict) or host.get("id") != host_id:
                    continue
            out.append(record)
        return out

    def suites(self) -> List[str]:
        """Distinct suite names present in the ledger, sorted."""
        return sorted({
            r.get("suite") for r in self.records() if isinstance(r.get("suite"), str)
        })

    def trend(
        self,
        suite: str,
        metric: str,
        window: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """The metric's trajectory: one point per record carrying it.

        Each point: ``{"commit", "timestamp", "value", "baseline"}``
        where ``baseline`` is the rolling median of all *prior* points
        (``None`` for the first).  ``window`` limits to the trailing N.
        """
        points: List[Dict[str, Any]] = []
        values: List[float] = []
        for record in self.records(suite=suite):
            metrics = record.get("metrics", {})
            value = metrics.get(metric)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            points.append({
                "commit": record.get("commit"),
                "timestamp": record.get("timestamp"),
                "value": float(value),
                "baseline": median(values) if values else None,
            })
            values.append(float(value))
        if window is not None:
            points = points[-window:]
        return points

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def check(
        self,
        record: Optional[Mapping[str, Any]] = None,
        *,
        suite: Optional[str] = None,
        window: int = 10,
        tolerance: float = 0.10,
        min_history: int = 3,
        mad_gate: float = 3.0,
    ) -> LedgerCheck:
        """Gate a record against the rolling baseline of its suite.

        With no explicit ``record``, the newest record of ``suite`` (or
        of the whole ledger) is checked against the window *preceding*
        it.  For every directional metric (nonzero
        :func:`counter_polarity`) present in both the record and at
        least ``min_history`` baseline records, the metric **fails**
        when it is worse than the rolling median by more than
        ``tolerance`` relatively *and* by more than ``mad_gate`` median
        absolute deviations — the MAD term calibrates the gate to each
        metric's own historical noise, so a jittery metric needs a
        bigger excursion than a rock-stable one.

        Too little history is a pass with a note, never an error: a
        fresh trajectory must be able to start.
        """
        history = self.records(suite=suite)
        if record is None:
            if not history:
                return LedgerCheck(
                    suite=suite or "*", window=window, tolerance=tolerance,
                    history=0, note="empty ledger: nothing to check",
                )
            record, history = history[-1], history[:-1]
        else:
            if suite is None:
                suite = record.get("suite")
                history = self.records(suite=suite)
            # Never baseline a record against itself: drop one identical
            # trailing entry if the record was already appended.
            if history and history[-1] == dict(record):
                history = history[:-1]
        baseline_records = history[-window:]
        result = LedgerCheck(
            suite=suite or str(record.get("suite", "*")),
            window=window, tolerance=tolerance, history=len(baseline_records),
        )
        metrics = record.get("metrics", {})
        if not isinstance(metrics, Mapping):
            raise AnalysisError("checked record has no metrics mapping")
        for name in sorted(metrics):
            value = metrics[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            polarity = counter_polarity(name)
            if polarity == 0:
                result.skipped += 1
                continue
            samples = [
                float(r["metrics"][name])
                for r in baseline_records
                if isinstance(r.get("metrics"), Mapping)
                and isinstance(r["metrics"].get(name), (int, float))
                and not isinstance(r["metrics"].get(name), bool)
            ]
            if len(samples) < min_history:
                result.skipped += 1
                continue
            result.checked += 1
            base = median(samples)
            noise = mad(samples, center=base)
            # "Worse" follows polarity: higher cost, or lower IPC.
            excess = (float(value) - base) * (-polarity)
            rel_excess = excess / abs(base) if base else (1.0 if excess > 0 else 0.0)
            if excess > 0 and rel_excess > tolerance and excess > mad_gate * noise:
                result.failures.append({
                    "metric": name,
                    "value": float(value),
                    "baseline": base,
                    "ratio": float(value) / base if base else float("inf"),
                    "mad": noise,
                })
        if result.checked == 0 and not result.failures:
            result.note = (
                f"insufficient history (< {min_history} comparable records): "
                "pass by default while the trajectory warms up"
            )
        return result

    def render_trend(self, suite: str, metric: str, window: int = 20) -> str:
        """A text table of the metric's recent trajectory."""
        points = self.trend(suite, metric, window=window)
        table = Table(
            ["commit", "timestamp", "value", "rolling median", "drift"],
            title=f"{suite}: {metric}",
        )
        for p in points:
            drift = (
                f"{100.0 * (p['value'] - p['baseline']) / p['baseline']:+.1f}%"
                if p["baseline"] else "-"
            )
            table.row([
                (p["commit"] or "-")[:12],
                p["timestamp"] or "-",
                f"{p['value']:.6g}",
                f"{p['baseline']:.6g}" if p["baseline"] is not None else "-",
                drift,
            ])
        return table.render()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ledger {self.path}>"


def _metric_names(records: Iterable[Mapping[str, Any]]) -> List[str]:
    names: Dict[str, None] = {}
    for record in records:
        metrics = record.get("metrics")
        if isinstance(metrics, Mapping):
            for name in metrics:
                names[name] = None
    return sorted(names)
