"""Diff two campaign manifests: per-benchmark counter deltas + verdicts.

The paper's headline claims are comparative (G-Cache vs BS/SRRIP/PDP
across 17 benchmarks), so the primitive this module provides is exactly
that shape: given manifest **A** (baseline) and manifest **B**
(candidate — another design set, another commit, another fidelity),
produce for every experiment label present in either a structured
verdict per counter:

``improved`` / ``regressed``
    The counter moved, the direction is meaningful for that counter
    (see :func:`counter_polarity`), and — when repeated-run samples
    exist — a deterministic permutation test rejects noise at ``alpha``.
``changed``
    The counter moved but has no defined polarity (e.g. raw event
    counts, where more/less is neither good nor bad by itself).
``unchanged``
    Bit-identical means, or statistically indistinguishable samples.
``new`` / ``missing``
    The counter (or whole label) exists on only one side.

Everything is deterministic: same two manifests → the same comparison
object → byte-identical rendered reports (:mod:`repro.analysis.report`),
regardless of dict ordering in the input files.  The module never
imports the simulator — analysis is read-only with respect to
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.loader import Manifest, TaskRecord
from repro.analysis.significance import deterministic_seed, permutation_pvalue
from repro.stats.report import geomean

__all__ = [
    "VERDICTS",
    "CounterDelta",
    "DesignSummary",
    "LabelComparison",
    "ManifestComparison",
    "compare_manifests",
    "counter_polarity",
]

#: Verdict vocabulary, in report order.
VERDICTS = ("regressed", "improved", "changed", "unchanged", "new", "missing")

#: Counter-name fragments whose metrics are better when *lower*.
_LOWER_IS_BETTER = (
    "miss_rate",
    "latency",
    "cycles",
    "stall",
    "seconds",
    "normalized_cost",
    "energy",
    "retries",
    "timeouts",
    "failed",
    "quarantined",
    "corrupt",
    "pool_rebuilds",
    "dropped",
)

#: Counter-name fragments whose metrics are better when *higher*.
_HIGHER_IS_BETTER = (
    "ipc",
    "speedup",
    "hit_rate",
    "row_hit_rate",
    "runs_per_sec",
    "instructions_per",
    "throughput",
)


def counter_polarity(name: str) -> int:
    """``+1`` higher-is-better, ``-1`` lower-is-better, ``0`` neutral.

    Matched on dotted-name fragments (``l1.miss_rate`` → ``-1``;
    ``core.instructions`` → ``0``).  Raw event counts are deliberately
    neutral: fewer ``l1.loads`` is not by itself an improvement, so such
    counters can only be ``changed``/``unchanged``, never ``regressed``.
    Higher-is-better fragments win ties (``hit_rate`` contains no
    lower-is-better fragment, but keep the precedence explicit).
    """
    lowered = name.lower()
    for fragment in _HIGHER_IS_BETTER:
        if fragment in lowered:
            return 1
    for fragment in _LOWER_IS_BETTER:
        if fragment in lowered:
            return -1
    return 0


@dataclass
class CounterDelta:
    """One counter's A-vs-B outcome within one experiment label.

    Attributes:
        name: Flattened counter name (``l1.miss_rate``).
        a: Mean over manifest A's samples (``None`` when absent).
        b: Mean over manifest B's samples (``None`` when absent).
        delta: ``b - a`` (``None`` unless both sides are numeric).
        rel_delta: ``delta / |a|`` (``None`` when ``a == 0`` or absent).
        p_value: Deterministic permutation p-value, when both sides had
            repeated samples; ``None`` for singleton comparisons.
        n_a, n_b: Sample counts behind each mean.
        verdict: One of :data:`VERDICTS`.
    """

    name: str
    a: Optional[float]
    b: Optional[float]
    delta: Optional[float]
    rel_delta: Optional[float]
    p_value: Optional[float]
    n_a: int
    n_b: int
    verdict: str


@dataclass
class LabelComparison:
    """All counter deltas for one experiment label (benchmark × design)."""

    label: str
    status: str  # "matched" | "new" | "missing"
    benchmark: Optional[str]
    design: Optional[str]
    fidelity: str
    deltas: List[CounterDelta] = field(default_factory=list)
    n_a: int = 0
    n_b: int = 0

    def by_verdict(self, verdict: str) -> List[CounterDelta]:
        return [d for d in self.deltas if d.verdict == verdict]


@dataclass
class DesignSummary:
    """Aggregate A→B movement for one design across benchmarks.

    ``ipc_ratio`` is the geometric mean over benchmarks of
    ``IPC_B / IPC_A`` (the paper's aggregation for speedups) — ``None``
    when IPC is unavailable (e.g. replay-only campaigns).
    ``miss_delta_pp`` is the arithmetic mean change of ``l1.miss_rate``
    in percentage points.
    """

    design: str
    benchmarks: int
    ipc_ratio: Optional[float]
    miss_delta_pp: Optional[float]


@dataclass
class ManifestComparison:
    """The full structured diff between two campaign manifests."""

    a: Manifest
    b: Manifest
    alpha: float
    labels: List[LabelComparison] = field(default_factory=list)
    failed_a: List[str] = field(default_factory=list)
    failed_b: List[str] = field(default_factory=list)

    def verdict_counts(self) -> Dict[str, int]:
        """Counter-level verdict totals across all matched labels."""
        counts = {v: 0 for v in VERDICTS}
        for label in self.labels:
            if label.status == "new":
                counts["new"] += 1
                continue
            if label.status == "missing":
                counts["missing"] += 1
                continue
            for delta in label.deltas:
                counts[delta.verdict] += 1
        return counts

    def top_regressions(self, n: int = 10) -> List[Tuple[str, CounterDelta]]:
        """The ``n`` worst regressions by absolute relative delta."""
        regressions = [
            (label.label, delta)
            for label in self.labels
            for delta in label.deltas
            if delta.verdict == "regressed"
        ]
        regressions.sort(
            key=lambda pair: (
                -(abs(pair[1].rel_delta) if pair[1].rel_delta is not None else 0.0),
                pair[0],
                pair[1].name,
            )
        )
        return regressions[:n]

    def design_summaries(self) -> List[DesignSummary]:
        """Per-design speedup/miss-rate roll-up across matched labels."""
        by_design: Dict[str, List[LabelComparison]] = {}
        for label in self.labels:
            if label.status == "matched" and label.design:
                by_design.setdefault(label.design, []).append(label)
        summaries = []
        for design in sorted(by_design):
            ratios: List[float] = []
            miss_deltas: List[float] = []
            for label in by_design[design]:
                deltas = {d.name: d for d in label.deltas}
                ipc = deltas.get("ipc")
                if ipc and ipc.a and ipc.b and ipc.a > 0 and ipc.b > 0:
                    ratios.append(ipc.b / ipc.a)
                miss = deltas.get("l1.miss_rate")
                if miss and miss.delta is not None:
                    miss_deltas.append(100.0 * miss.delta)
            summaries.append(
                DesignSummary(
                    design=design,
                    benchmarks=len(by_design[design]),
                    ipc_ratio=geomean(ratios) if ratios else None,
                    miss_delta_pp=(
                        sum(miss_deltas) / len(miss_deltas) if miss_deltas else None
                    ),
                )
            )
        return summaries


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _augmented_metrics(task: TaskRecord) -> Dict[str, Any]:
    """A task's flattened metrics plus derived headline counters.

    IPC is the paper's headline metric but the metrics registry stores
    its ingredients (``core.instructions`` / ``core.cycles``); deriving
    it here keeps manifests untouched while giving comparisons and
    design summaries the number people actually look at.
    """
    flat = task.flat_metrics()
    instructions = flat.get("core.instructions")
    cycles = flat.get("core.cycles")
    if _is_number(instructions) and _is_number(cycles) and cycles:
        flat["ipc"] = instructions / cycles
    return flat


def _counter_names(tasks: Sequence[TaskRecord]) -> List[str]:
    names: Dict[str, None] = {}
    for task in tasks:
        for name in _augmented_metrics(task):
            names[name] = None
    return sorted(names)


def _compare_counter(
    label: str,
    name: str,
    tasks_a: Sequence[TaskRecord],
    tasks_b: Sequence[TaskRecord],
    alpha: float,
    rounds: int,
) -> CounterDelta:
    values_a = [
        v for t in tasks_a if _is_number(v := _augmented_metrics(t).get(name))
    ]
    values_b = [
        v for t in tasks_b if _is_number(v := _augmented_metrics(t).get(name))
    ]
    mean_a = sum(values_a) / len(values_a) if values_a else None
    mean_b = sum(values_b) / len(values_b) if values_b else None

    if mean_a is None or mean_b is None:
        # Non-numeric or one-sided counters: equality check only.
        raw_a = _augmented_metrics(tasks_a[0]).get(name) if tasks_a else None
        raw_b = _augmented_metrics(tasks_b[0]).get(name) if tasks_b else None
        if raw_a is None and raw_b is not None:
            verdict = "new"
        elif raw_a is not None and raw_b is None:
            verdict = "missing"
        else:
            verdict = "unchanged" if raw_a == raw_b else "changed"
        return CounterDelta(
            name=name, a=mean_a, b=mean_b, delta=None, rel_delta=None,
            p_value=None, n_a=len(values_a), n_b=len(values_b), verdict=verdict,
        )

    delta = mean_b - mean_a
    rel_delta = (delta / abs(mean_a)) if mean_a else None
    # Deterministic by construction: the seed depends only on the
    # comparison coordinates, never on process state.
    p_value = permutation_pvalue(
        values_a, values_b, rounds=rounds,
        seed=deterministic_seed("compare", label, name),
    )

    if delta == 0:
        verdict = "unchanged"
    elif p_value is not None and p_value > alpha:
        verdict = "unchanged"  # statistically indistinguishable
    else:
        polarity = counter_polarity(name)
        if polarity == 0:
            verdict = "changed"
        elif delta * polarity > 0:
            verdict = "improved"
        else:
            verdict = "regressed"
    return CounterDelta(
        name=name, a=mean_a, b=mean_b, delta=delta, rel_delta=rel_delta,
        p_value=p_value, n_a=len(values_a), n_b=len(values_b), verdict=verdict,
    )


def compare_manifests(
    a: Manifest,
    b: Manifest,
    alpha: float = 0.05,
    rounds: int = 5000,
) -> ManifestComparison:
    """Diff two loaded manifests into a :class:`ManifestComparison`.

    Labels are matched exactly (kind, fidelity, benchmark and design all
    live in the label), so a design renamed between runs shows up as one
    ``missing`` plus one ``new`` label — the honest answer.  Counter
    verdicts within matched labels follow the module rules above.
    """
    groups_a = a.groups()
    groups_b = b.groups()
    comparison = ManifestComparison(
        a=a, b=b, alpha=alpha,
        failed_a=a.failed_labels, failed_b=b.failed_labels,
    )
    for label in sorted(set(groups_a) | set(groups_b)):
        tasks_a = groups_a.get(label, [])
        tasks_b = groups_b.get(label, [])
        sample = (tasks_a or tasks_b)[0]
        entry = LabelComparison(
            label=label,
            status="matched" if tasks_a and tasks_b
            else ("missing" if tasks_a else "new"),
            benchmark=sample.benchmark,
            design=sample.design,
            fidelity=sample.fidelity,
            n_a=len(tasks_a),
            n_b=len(tasks_b),
        )
        if entry.status == "matched":
            for name in _counter_names(list(tasks_a) + list(tasks_b)):
                entry.deltas.append(
                    _compare_counter(label, name, tasks_a, tasks_b, alpha, rounds)
                )
        comparison.labels.append(entry)
    return comparison
