"""Cross-engine request coalescing: one execution per in-flight key.

When several campaign engines run concurrently over the same result
cache (the ``repro.service`` daemon multiplexing client jobs onto one
machine), identical tasks submitted at the same time would each miss
the cache and execute redundantly — the cache only deduplicates work
that has *finished*.  The :class:`InflightRegistry` closes that window:
before executing a cache miss, an engine *claims* the task's key; the
first claimant (the **leader**) executes and publishes the payload,
every later claimant (a **follower**) blocks until the publication and
shares the result, counted as a *coalesced hit*.

The registry is process-local and thread-safe — engines sharing it must
live in one process (the daemon runs each job's engine in a worker
thread; the engines' own worker pools fan out below this layer).
Payloads are published by reference, which is safe because campaign
payloads are immutable-by-convention result objects.

Failure semantics: a leader publishes its error (or a generic abort
when it unwinds without completing), and woken followers *re-claim* the
key — one of them becomes the new leader and executes with its own
retry budget, so a crashing client job can never poison another job's
result.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

__all__ = ["InflightRegistry", "InflightEntry"]

#: Payload slot sentinel: distinguishes "not published yet" from a
#: published ``None`` payload.
_UNSET = object()


class InflightEntry:
    """One in-flight execution: a latch plus the eventual payload."""

    __slots__ = ("key", "owner", "event", "payload", "error", "followers")

    def __init__(self, key: str, owner: str) -> None:
        self.key = key
        self.owner = owner
        self.event = threading.Event()
        self.payload: Any = _UNSET
        self.error: Optional[BaseException] = None
        self.followers = 0

    @property
    def published(self) -> bool:
        return self.event.is_set()

    @property
    def succeeded(self) -> bool:
        return self.event.is_set() and self.error is None and self.payload is not _UNSET

    def result(self) -> Any:
        """The published payload; raises if the leader failed."""
        if not self.succeeded:
            raise (self.error or RuntimeError(f"{self.key}: leader never published"))
        return self.payload


class InflightRegistry:
    """Thread-safe map of task keys currently executing somewhere.

    Shared by every engine the service daemon runs; also usable
    standalone to coalesce engines running in threads of one process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, InflightEntry] = {}
        #: Lifetime count of follows (executions avoided), for ``/stats``.
        self.coalesced_total = 0

    def claim(self, key: str, owner: str) -> Tuple[bool, InflightEntry]:
        """Claim ``key`` for execution, or join the existing execution.

        Returns ``(True, entry)`` when the caller became the leader and
        must execute then :meth:`publish`, or ``(False, entry)`` when
        another engine is already executing — wait on ``entry.event``
        and take ``entry.result()``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = InflightEntry(key, owner)
                self._entries[key] = entry
                return True, entry
            entry.followers += 1
            self.coalesced_total += 1
            return False, entry

    def publish(
        self,
        entry: InflightEntry,
        payload: Any = _UNSET,
        error: Optional[BaseException] = None,
    ) -> None:
        """Resolve ``entry`` (payload or error) and wake every follower.

        The key is released first, so a follower that observes a failed
        entry can immediately re-claim and execute itself.
        """
        with self._lock:
            if self._entries.get(entry.key) is entry:
                del self._entries[entry.key]
            entry.payload = payload
            entry.error = error
        entry.event.set()

    def abandon(self, entry: InflightEntry, reason: str) -> None:
        """Publish a leader's unwind (cancel/interrupt) as an error."""
        self.publish(entry, error=RuntimeError(f"{entry.key}: {reason}"))

    # -- introspection (service /stats, tests) --------------------------
    def inflight_keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def follower_count(self, key: str) -> int:
        with self._lock:
            entry = self._entries.get(key)
            return entry.followers if entry is not None else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InflightRegistry {len(self)} in flight, "
            f"{self.coalesced_total} coalesced>"
        )
