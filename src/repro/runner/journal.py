"""Append-only campaign journal: the crash-safe record of completed work.

The persistent result cache already makes campaigns *incrementally*
re-runnable, but it cannot say what a particular campaign had finished
when it died — entries are shared across campaigns and carry no order.
The journal closes that gap: one JSONL line per completed task, flushed
(and fsync'd) as each task finishes, so after a crash, a kill -9 or a
Ctrl-C the set of completed cache keys survives on disk.

``CampaignEngine(journal=..., resume=True)`` reads the journal back and
skips every journaled task whose payload the cache can still serve;
only the genuinely unfinished remainder executes.  Lines are
self-describing::

    {"key": "ab12…", "label": "simulate:SPMV/gc", "cached": false,
     "seconds": 1.93, "attempts": 2}

A journal is plain data — safe to cat, grep, or truncate.  A torn final
line (the write that was in flight when the process died) is skipped on
load rather than treated as corruption.

A journal has exactly one writer.  Two engines appending to the same
file would interleave fsync'd lines and could corrupt resume state, so
the first append takes an advisory ``fcntl.flock`` on the journal file
(an ``O_EXCL`` lockfile on platforms without ``fcntl``); a second
writer fails fast with :class:`JournalLockedError` instead of silently
interleaving.  The lock dies with the process (flock) so a crashed
campaign never blocks its own ``--resume``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, Optional, Union

try:  # POSIX: the lock is the journal fd itself and dies with the process.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["CampaignJournal", "JournalLockedError"]


class JournalLockedError(RuntimeError):
    """Another writer holds the journal; appending would interleave."""

    def __init__(self, path: Path) -> None:
        super().__init__(
            f"journal {path} is already open for writing by another "
            f"campaign engine; two concurrent writers would interleave "
            f"records and corrupt resume state.  Point each campaign at "
            f"its own journal file."
        )
        self.path = path


class CampaignJournal:
    """JSONL journal of completed task keys, flushed per record.

    Args:
        path: Journal file; parent directories are created on first
            append.  The file is opened lazily in append mode, so
            constructing a journal never touches the disk.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self._lockfile: Optional[Path] = None
        #: Keys journaled by *this* process (avoids duplicate lines when
        #: one engine runs several batches over the same tasks).
        self._written: set = set()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Completed records keyed by cache key; ``{}`` if no journal.

        Tolerates a torn trailing line (interrupted append) and blank
        lines; anything else unparsable is skipped too — a damaged
        journal degrades to re-executing more tasks, never to a crash.
        Reading never takes the writer lock.
        """
        records: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = record.get("key") if isinstance(record, dict) else None
            if isinstance(key, str):
                records[key] = record
        return records

    def seen(self, keys) -> None:
        """Mark ``keys`` as already journaled (skip re-appending them).

        Called by a resuming engine after :meth:`load`, so tasks served
        straight from the cache don't duplicate their journal lines.
        """
        self._written.update(keys)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _open_locked(self) -> IO[str]:
        """Open the journal for append and claim the single-writer lock.

        Raises :class:`JournalLockedError` when another open journal
        (this process or any other) already holds it.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a")
        if fcntl is not None:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fh.close()
                raise JournalLockedError(self.path) from None
        else:  # pragma: no cover - non-POSIX fallback
            lockfile = self.path.with_name(self.path.name + ".lock")
            try:
                fd = os.open(lockfile, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                fh.close()
                raise JournalLockedError(self.path) from None
            os.write(fd, f"{os.getpid()}\n".encode())
            os.close(fd)
            self._lockfile = lockfile
        return fh

    def append(self, record: Dict[str, Any]) -> None:
        """Append one completed-task record and push it to disk now.

        Flush + fsync per record: a journal write is the commit point
        for "this task never needs to run again", so it must not sit in
        a userspace buffer when the process dies.  The first append
        claims the single-writer lock (see :class:`JournalLockedError`).
        """
        key = record.get("key")
        if key in self._written:
            return
        if self._fh is None:
            self._fh = self._open_locked()
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if isinstance(key, str):
            self._written.add(key)

    def close(self) -> None:
        """Close the journal, releasing the writer lock."""
        if self._fh is not None:
            self._fh.close()  # closing the fd drops the flock
            self._fh = None
        if self._lockfile is not None:  # pragma: no cover - non-POSIX
            try:
                os.unlink(self._lockfile)
            except OSError:
                pass
            self._lockfile = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self._fh is not None else "closed"
        return f"<CampaignJournal {self.path} ({state})>"
