"""Parallel campaign engine with a persistent, content-addressed cache.

The paper's whole evaluation is one benchmark x design simulation
campaign; this package makes that campaign embarrassingly parallel and
incrementally re-runnable:

* :class:`Task` — a picklable, from-scratch-recomputable work unit
  (timing simulation, timing-free replay, or SPDP-B PD sweep);
* :class:`ResultCache` — an on-disk store keyed by a stable hash of the
  task's full inputs plus a code-version salt, with atomic writes and
  corruption-tolerant reads;
* :class:`CampaignEngine` — fans task batches out over a process pool
  (``jobs=1`` = serial fallback), probes/fills the cache, and emits a
  per-run manifest with wall-time and hit/miss counters.  Execution is
  fault-tolerant: bounded retries with exponential backoff, per-task
  timeouts with hung-worker reclamation, worker-crash pool rebuilds,
  checksum quarantine of rotten cache entries, and a crash-safe
  :class:`CampaignJournal` that makes interrupted campaigns resumable
  (``resume=True``);
* :mod:`repro.faults` — a deterministic, seed-driven fault injector
  (``CampaignEngine(faults=FaultPlan.chaos(...))``) so every recovery
  path above is exercised by tests and CI, not just by bad days.

Quickstart::

    from repro.runner import CampaignEngine, ResultCache, Task

    engine = CampaignEngine(jobs=4, cache=ResultCache("~/.cache/repro"))
    tasks = [Task(kind="simulate", benchmark=b, design="gc", scale=0.25)
             for b in ("SPMV", "KMN", "SSC")]
    results = engine.run(tasks)          # list of RunResult
    print(engine.counters.render())      # hit/miss + timing summary

Results are bit-identical to serial runs by construction (each task is
executed from a self-contained description in a fresh policy/trace
state); ``tests/test_runner_determinism.py`` locks this in.
"""

from repro.runner.cache import (
    CACHE_SCHEMA,
    MISS,
    QUARANTINE_DIR,
    ResultCache,
    config_fingerprint,
    default_salt,
    stable_hash,
)
from repro.runner.coalesce import InflightRegistry
from repro.runner.engine import (
    FAILED,
    MANIFEST_SCHEMA_VERSION,
    CampaignCancelled,
    CampaignEngine,
    CampaignTaskError,
    EngineControl,
    git_commit,
    run_campaign,
)
from repro.runner.journal import CampaignJournal, JournalLockedError
from repro.runner.task import PD_SWEEP, Task, run_task, sweep_optimal_pd, trace_digest

__all__ = [
    "CACHE_SCHEMA",
    "FAILED",
    "MANIFEST_SCHEMA_VERSION",
    "MISS",
    "PD_SWEEP",
    "QUARANTINE_DIR",
    "CampaignCancelled",
    "CampaignEngine",
    "CampaignJournal",
    "CampaignTaskError",
    "EngineControl",
    "InflightRegistry",
    "JournalLockedError",
    "ResultCache",
    "Task",
    "config_fingerprint",
    "default_salt",
    "git_commit",
    "run_campaign",
    "run_task",
    "stable_hash",
    "sweep_optimal_pd",
    "trace_digest",
]
