"""Campaign work units: self-contained, picklable task descriptions.

A :class:`Task` captures everything a worker process needs to recompute
one result from scratch — benchmark name + trace parameters (or an
explicit trace), design key + parameters, and the full
:class:`GPUConfig` — so the campaign engine can ship it across a
``ProcessPoolExecutor`` boundary and key its persistent cache entry by
content (:meth:`Task.fingerprint`).

Task kinds:

``simulate``
    Full timing simulation; payload is a :class:`~repro.sim.simulator.RunResult`.
``replay``
    Timing-free cache replay; payload is a
    :class:`~repro.sim.replay.ReplayResult` (drives Fig. 2).
``pd-sweep``
    The SPDP-B offline protecting-distance sweep; payload is the best
    PD (``int``).  Defined here (rather than in ``repro.experiments``)
    so workers need no experiment-layer imports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.replay import build_core_streams, replay
from repro.sim.simulator import FIDELITIES, simulate
from repro.trace.trace import KernelTrace

from repro.runner.cache import config_fingerprint, stable_hash

__all__ = [
    "PD_SWEEP",
    "Task",
    "run_task",
    "run_task_armed",
    "run_task_timed",
    "sweep_optimal_pd",
    "trace_digest",
]

#: Candidate protecting distances for the SPDP-B offline sweep
#: (canonical definition; re-exported by ``repro.experiments.common``).
PD_SWEEP: Tuple[int, ...] = (4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 68, 96)

TASK_KINDS = ("simulate", "replay", "pd-sweep")


def sweep_optimal_pd(
    trace: KernelTrace,
    config: GPUConfig,
    candidates: Sequence[int] = PD_SWEEP,
) -> int:
    """Offline per-benchmark PD sweep (defines SPDP-B, as in the paper).

    Uses the timing-free replay driver and picks the PD with the lowest
    L1 miss rate; ties go to the smaller PD (cheaper hardware).
    """
    streams = build_core_streams(trace, config)
    best_pd = candidates[0]
    best_miss = float("inf")
    for pd in candidates:
        result = replay(
            trace,
            config,
            make_design("spdp-b", pd=pd),
            streams=streams,
            include_l2=False,
        )
        miss = result.l1.miss_rate
        if miss < best_miss - 1e-9:
            best_miss = miss
            best_pd = pd
    return best_pd


def trace_digest(trace: KernelTrace) -> str:
    """Content digest of a kernel trace, for keying ad-hoc traces.

    Hashes the name, scratchpad footprint and the full instruction
    stream incrementally (``repr`` of plain ints/tuples is stable across
    processes and Python versions, unlike ``hash()``).
    """
    h = hashlib.sha256()
    h.update(repr((trace.name, trace.scratchpad_per_cta)).encode())
    for cta in trace.ctas:
        for warp in cta.warps:
            h.update(repr(warp).encode())
    return h.hexdigest()


@dataclass
class Task:
    """One unit of campaign work.

    Args:
        kind: ``"simulate"``, ``"replay"`` or ``"pd-sweep"``.
        benchmark: Table-1 benchmark name, rebuilt in the worker via
            :func:`repro.trace.suite.build_benchmark` from
            ``(benchmark, scale, seed)``.
        design: Design key (ignored by ``pd-sweep``).
        pd: Protecting distance for ``spdp-b`` tasks.
        scale: Trace scale factor.
        seed: Trace generation seed.
        config: Full architectural configuration (hashed field-by-field
            into the cache key, so any change invalidates).
        victim_share_factor: ``S_v`` for victim-bit sharing runs.
        pd_candidates: Sweep candidates for ``pd-sweep`` tasks.
        include_l2: Model the L2 in ``replay`` tasks.
        fidelity: ``"timing"`` (cycle-accurate, the default) or
            ``"functional"`` (fast vectorized replay with estimated
            cycles) for ``simulate`` tasks.  Part of the cache key, so
            the two fidelities never alias each other's results.
        trace: Optional pre-built trace.  With ``key_by_trace=False``
            this is only an execution shortcut (the cache key still uses
            benchmark/scale/seed); with ``key_by_trace=True`` the key
            uses a content digest of the trace instead — required for
            traces that did not come from the benchmark registry.
        trace_key: Precomputed :func:`trace_digest` (avoids rehashing a
            shared trace for every grid point).
        scenario: Declarative scenario spec document (a plain dict — it
            must cross the pickle boundary), built in the worker via
            :func:`repro.scenarios.build_scenario` with this task's
            ``scale``/``seed``.  The cache key is the content-addressed
            :func:`repro.scenarios.spec_digest` of the canonicalized
            spec, so editing any knob — or the schema defaults it
            inherits — invalidates exactly the affected entries.
    """

    kind: str
    benchmark: Optional[str] = None
    design: str = "bs"
    pd: Optional[int] = None
    scale: float = 1.0
    seed: int = 0
    config: GPUConfig = field(default_factory=GPUConfig)
    victim_share_factor: int = 1
    pd_candidates: Tuple[int, ...] = PD_SWEEP
    include_l2: bool = True
    trace: Optional[KernelTrace] = None
    key_by_trace: bool = False
    trace_key: Optional[str] = None
    fidelity: str = "timing"
    scenario: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"unknown task kind {self.kind!r}; known: {TASK_KINDS}")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; expected one of {FIDELITIES}"
            )
        if self.fidelity != "timing" and self.kind != "simulate":
            raise ValueError(
                f"fidelity={self.fidelity!r} only applies to simulate tasks, "
                f"not {self.kind!r}"
            )
        if self.benchmark is None and self.trace is None and self.scenario is None:
            raise ValueError(
                "task needs a benchmark name, a scenario spec or an explicit trace"
            )
        if self.benchmark is not None and self.scenario is not None:
            raise ValueError("benchmark and scenario are mutually exclusive")
        if self.key_by_trace and self.trace is None and self.trace_key is None:
            raise ValueError("key_by_trace requires a trace or a trace_key")
        if self.kind == "simulate" and self.design == "spdp-b" and self.pd is None:
            raise ValueError("spdp-b simulate tasks need pd=...")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable manifest label, e.g. ``simulate:SPMV/gc``.

        Non-default fidelities render inline
        (``simulate[functional]:SPMV/gc``) so manifests read correctly
        without consulting the per-task fidelity field.
        """
        name = self.benchmark
        if name is None and self.scenario is not None:
            name = self.scenario.get("name", "?")
        if name is None:
            name = self.trace.name if self.trace else "?"
        if self.kind == "pd-sweep":
            return f"pd-sweep:{name}"
        kind = self.kind
        if self.fidelity != "timing":
            kind = f"{kind}[{self.fidelity}]"
        return f"{kind}:{name}/{self.design}"

    def fingerprint(self) -> Dict[str, Any]:
        """Everything that determines this task's result, as plain data."""
        fp: Dict[str, Any] = {
            "kind": self.kind,
            "config": config_fingerprint(self.config),
        }
        if self.key_by_trace:
            key = self.trace_key or trace_digest(self.trace)
            fp["trace"] = key
        elif self.scenario is not None:
            from repro.scenarios import spec_digest

            # Content-addressed: the digest covers the canonical spec
            # with this task's scale/seed applied, so scale/seed need no
            # separate fingerprint entries.
            fp["scenario"] = spec_digest(
                self.scenario, scale=self.scale, seed=self.seed
            )
        else:
            fp["benchmark"] = self.benchmark
            fp["scale"] = self.scale
            fp["seed"] = self.seed
        if self.kind == "pd-sweep":
            fp["pd_candidates"] = list(self.pd_candidates)
        else:
            fp["design"] = self.design
            fp["pd"] = self.pd
            fp["victim_share_factor"] = self.victim_share_factor
        if self.kind == "replay":
            fp["include_l2"] = self.include_l2
        if self.kind == "simulate":
            fp["fidelity"] = self.fidelity
        return fp

    def key(self, salt: str) -> str:
        """Stable cache key: SHA-256 over fingerprint + code salt."""
        return stable_hash({"salt": salt, **self.fingerprint()})

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_trace(self) -> KernelTrace:
        if self.trace is not None:
            return self.trace
        if self.scenario is not None:
            from repro.scenarios import build_scenario

            return build_scenario(self.scenario, scale=self.scale, seed=self.seed)
        from repro.trace.suite import build_benchmark

        return build_benchmark(self.benchmark, scale=self.scale, seed=self.seed)

    def build_design(self) -> DesignSpec:
        return make_design(self.design, pd=self.pd)


def run_task(task: Task) -> Any:
    """Execute one task from scratch; the top-level worker entry point."""
    trace = task.build_trace()
    if task.kind == "simulate":
        return simulate(
            trace,
            task.config,
            task.build_design(),
            victim_share_factor=task.victim_share_factor,
            fidelity=task.fidelity,
        )
    if task.kind == "replay":
        return replay(
            trace, task.config, task.build_design(), include_l2=task.include_l2
        )
    return sweep_optimal_pd(trace, task.config, task.pd_candidates)


def run_task_timed(task: Task) -> Tuple[Any, float]:
    """``(payload, wall_seconds)`` — used by the pool so per-task timing
    reflects worker-side compute, not queueing."""
    import time

    t0 = time.perf_counter()
    payload = run_task(task)
    return payload, time.perf_counter() - t0


def run_task_armed(task: Task, key: str, attempt: int, plan=None) -> Tuple[Any, float]:
    """Worker entry point with fault injection threaded behind it.

    Identical to :func:`run_task_timed` when ``plan`` is ``None`` (the
    production path) — the injector consultation is one attribute check.
    With a :class:`repro.faults.FaultPlan` armed, the planned fault for
    ``(key, attempt)`` fires *before* any real work, so a faulted
    attempt never wastes simulation time and a clean retry recomputes
    from scratch, keeping payloads bit-identical to fault-free runs.
    """
    import time

    if plan is not None:
        from repro.faults import inject

        inject(plan, key, attempt)
    t0 = time.perf_counter()
    payload = run_task(task)
    return payload, time.perf_counter() - t0
