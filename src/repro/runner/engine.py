"""The campaign engine: fault-tolerant parallel execution behind the cache.

:class:`CampaignEngine` is the one place the repository fans simulation
work out over processes.  Given a batch of :class:`~repro.runner.task.Task`
objects it

1. computes each task's stable cache key, consults the campaign journal
   (``resume=True``) and probes the persistent
   :class:`~repro.runner.cache.ResultCache` (when one is attached),
2. deduplicates the remaining misses by key and executes them — serially
   for ``jobs=1`` (also the fallback for single-task batches, where a
   pool would only add fork latency), or on a ``ProcessPoolExecutor``
   otherwise,
3. survives partial failure: every attempt is covered by a bounded
   retry budget with exponential backoff, pool runs enforce a per-task
   ``task_timeout`` by killing and rebuilding the pool, and a worker
   crash (``BrokenProcessPool``) likewise rebuilds the pool and retries
   the interrupted tasks,
4. writes results back to the cache atomically, appends each completed
   key to the crash-safe :class:`~repro.runner.journal.CampaignJournal`,
   and records per-task wall times, attempts and hit/miss/retry
   counters (:class:`~repro.stats.campaign.CampaignCounters`),

and returns payloads aligned with the submitted batch.  Because every
task is executed from scratch in its own interpreter state (workers
rebuild traces and policy objects from the task description), results
are bit-identical regardless of ``jobs``, submission order, or how many
faults were recovered along the way — the property the determinism and
chaos test layers lock in.

Failure semantics
-----------------

A task *failure* is any exception from an attempt, an engine-enforced
timeout, or a pool break while the task was in flight (crashes cannot
be attributed to one future, so every in-flight task is charged — the
honest accounting, and still bounded).  A task whose failures exceed
``retries`` raises :class:`CampaignTaskError` carrying the task label,
key and full attempt history; with ``keep_going=True`` the error is
recorded, the payload slot gets the :data:`FAILED` sentinel, and the
rest of the campaign completes.  ``KeyboardInterrupt`` is never
retried: the journal is already flushed per task, a partial manifest
marked ``"interrupted": true`` is written (when ``manifest_path`` is
set), and the interrupt propagates.

Fault injection (:class:`repro.faults.FaultPlan`) threads through the
same worker entry point (:func:`repro.runner.task.run_task_armed`), so
every one of these recovery paths is deterministic, testable code.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults import FaultPlan, corrupt_file
from repro.runner.cache import MISS, ResultCache, default_salt
from repro.runner.coalesce import InflightEntry, InflightRegistry
from repro.runner.journal import CampaignJournal
from repro.runner.task import Task, run_task_armed
from repro.stats.campaign import CampaignCounters, TaskTiming

__all__ = [
    "FAILED",
    "MANIFEST_SCHEMA_VERSION",
    "CampaignCancelled",
    "CampaignEngine",
    "CampaignTaskError",
    "EngineControl",
    "git_commit",
    "run_campaign",
]

#: How often (seconds) the pool loop wakes to check deadlines/backoffs.
_POLL_TICK = 0.05

#: Campaign-manifest schema version.  Bump on any change to the manifest
#: layout that ``repro.analysis`` consumers would need to branch on.
#: Version history: 1 = pre-analysis manifests (no version field);
#: 2 = adds ``schema_version``, ``git_commit`` and structured per-task
#: ``kind``/``benchmark``/``design`` fields.
MANIFEST_SCHEMA_VERSION = 2

_GIT_COMMIT_CACHE: List[Optional[str]] = []


def git_commit() -> Optional[str]:
    """Git commit hash of the source tree, or ``None`` outside a repo.

    Resolved once per process (manifests are written repeatedly) from
    the directory holding this file, so an installed-but-not-cloned
    tree, a missing ``git`` binary, or any git failure all degrade to
    ``None`` rather than an error — manifests must write anywhere.
    """
    if not _GIT_COMMIT_CACHE:
        commit: Optional[str] = None
        try:
            import subprocess

            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
            )
            if proc.returncode == 0:
                commit = proc.stdout.strip() or None
        except Exception:
            commit = None
        _GIT_COMMIT_CACHE.append(commit)
    return _GIT_COMMIT_CACHE[0]


class _FailedSentinel:
    """Payload slot for a task that exhausted its retries (keep_going)."""

    def __repr__(self) -> str:
        return "<FAILED>"


#: Sentinel payload returned for exhausted tasks under ``keep_going``.
FAILED = _FailedSentinel()


class CampaignTaskError(RuntimeError):
    """A task failed more than ``retries`` times; carries the evidence.

    Attributes:
        label: Human-readable task label (``simulate:SPMV/gc``).
        key: The task's cache key.
        history: One record per failed attempt:
            ``{"attempt": n, "kind": ..., "error": ..., "seconds": ...}``.
    """

    def __init__(self, label: str, key: str, history: List[Dict[str, Any]]) -> None:
        self.label = label
        self.key = key
        self.history = list(history)
        detail = "; ".join(
            f"attempt {h['attempt']}: [{h['kind']}] {h['error']}" for h in history
        )
        super().__init__(
            f"campaign task {label!r} (key {key[:12]}…) failed after "
            f"{len(history)} attempt(s): {detail}"
        )


class CampaignCancelled(RuntimeError):
    """The engine's :class:`EngineControl` was cancelled mid-campaign.

    Completed tasks stay cached and journaled; the batch's remaining
    tasks never execute.  Raised out of :meth:`CampaignEngine.run`.
    """


class EngineControl:
    """Thread-safe pause/resume/cancel switchboard for a running engine.

    Built for the service daemon (one control per job, poked from the
    asyncio front end while the engine runs in a worker thread), but
    usable by any harness that drives an engine from another thread.
    Pause takes effect at task boundaries: in-flight attempts finish,
    no new attempt starts until :meth:`resume`.  Cancel unwinds the
    engine with :class:`CampaignCancelled` (a paused engine wakes up to
    be cancelled).
    """

    def __init__(self) -> None:
        self._resume = threading.Event()
        self._resume.set()
        self._cancel = threading.Event()

    def pause(self) -> None:
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    def cancel(self) -> None:
        self._cancel.set()
        self._resume.set()  # wake anyone parked in checkpoint()

    @property
    def paused(self) -> bool:
        return not self._resume.is_set() and not self._cancel.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def checkpoint(self, timeout: Optional[float] = None) -> None:
        """Block while paused; raise :class:`CampaignCancelled` on cancel.

        With ``timeout`` the wait is bounded (the pool loop polls so it
        can keep reaping in-flight futures while paused).
        """
        if self._cancel.is_set():
            raise CampaignCancelled("campaign cancelled")
        self._resume.wait(timeout)
        if self._cancel.is_set():
            raise CampaignCancelled("campaign cancelled")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("paused" if self.paused else "running")
        return f"<EngineControl {state}>"


class _PoolReset(Exception):
    """Internal: unwind the pool loop to kill and rebuild the pool."""


class _TaskState:
    """Mutable per-unique-task execution state within one ``run`` batch."""

    __slots__ = ("task", "key", "history", "not_before", "done")

    def __init__(self, task: Task, key: str) -> None:
        self.task = task
        self.key = key
        #: One record per failed attempt; ``len`` is also the next
        #: attempt index (and thus the fault-injection draw index).
        self.history: List[Dict[str, Any]] = []
        self.not_before = 0.0  # monotonic instant the next attempt may start
        self.done = False

    @property
    def attempt(self) -> int:
        return len(self.history)


def _payload_metrics(payload: Any) -> Optional[Dict[str, Any]]:
    """Pull the namespaced metrics snapshot out of a task payload.

    Simulation payloads are :class:`~repro.sim.simulator.RunResult`
    objects carrying ``extras["metrics"]``; cache entries written before
    the metrics registry existed (or non-simulation payloads) yield
    ``None``.  Duck-typed so the runner stays import-free of the sim.
    """
    extras = getattr(payload, "extras", None)
    if extras is None and isinstance(payload, dict):
        extras = payload
    if isinstance(extras, dict):
        metrics = extras.get("metrics")
        if isinstance(metrics, dict):
            return metrics
    return None


def _task_fields(task: Task) -> Dict[str, Optional[str]]:
    """Structured identity fields for a task's manifest/timing record."""
    benchmark = task.benchmark
    if benchmark is None and task.scenario is not None:
        benchmark = task.scenario.get("name")
    if benchmark is None and task.trace is not None:
        benchmark = task.trace.name
    return {
        "kind": task.kind,
        "benchmark": benchmark,
        "design": None if task.kind == "pd-sweep" else task.design,
    }


class CampaignEngine:
    """Executes campaign tasks in parallel, behind the persistent cache.

    Args:
        jobs: Worker process count; ``None`` means ``os.cpu_count()``,
            ``1`` forces fully serial in-process execution.
        cache: Persistent result cache, or ``None`` to disable all reads
            and writes (the ``--no-cache`` path).
        salt: Code-version salt folded into every key; defaults to
            :func:`repro.runner.cache.default_salt`.
        retries: Failures tolerated per task before it is declared
            failed (``0`` = one attempt, no retry — the old behavior).
        task_timeout: Per-attempt wall-clock budget in seconds.
            Enforced preemptively in pool mode (the hung worker's pool
            is killed and rebuilt); serial in-process attempts cannot be
            preempted, so the timeout only applies under ``jobs >= 2``.
        backoff_base: First retry delay; doubles per failure of that
            task (``base * 2**(failures-1)``), capped at
            ``backoff_cap``.  Deterministic — no jitter.
        backoff_cap: Upper bound on any single backoff delay.
        keep_going: Record exhausted tasks (payload = :data:`FAILED`)
            and finish the campaign instead of raising on first failure.
        journal: Campaign journal path (or a
            :class:`~repro.runner.journal.CampaignJournal`); every
            completed task key is appended and fsync'd immediately.
        resume: Serve tasks recorded in the journal from the cache and
            execute only the remainder.  Requires ``journal``; tasks
            journaled but missing (or quarantined) from the cache are
            transparently recomputed.
        faults: Optional :class:`repro.faults.FaultPlan` — deterministic
            fault injection for chaos testing.  ``None`` (production)
            costs one attribute check per task.
        manifest_path: When set, an interrupt (Ctrl-C) writes a partial
            manifest here, marked ``"interrupted": true``, before the
            ``KeyboardInterrupt`` propagates.
        control: Optional :class:`EngineControl` — lets another thread
            pause/resume the engine at task boundaries or cancel the
            campaign (:class:`CampaignCancelled`).
        progress: Optional callback receiving one plain-dict event per
            task transition (``task_started`` / ``task_retried`` /
            ``task_failed`` / ``task_completed``); exceptions it raises
            are swallowed.  The service daemon bridges these to its
            subscribers.
        inflight: Optional :class:`~repro.runner.coalesce.InflightRegistry`
            shared with other engines in this process.  Cache misses
            whose key another engine is already executing *follow* that
            execution instead of recomputing (a coalesced hit); keys
            this engine executes are published for others.
        client: Stable identifier for this engine in the shared
            registry (defaults to an id-derived token); surfaces in
            service stats and debugging.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        salt: Optional[str] = None,
        *,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        keep_going: bool = False,
        journal: Optional[Union[str, os.PathLike, CampaignJournal]] = None,
        resume: bool = False,
        faults: Optional[FaultPlan] = None,
        manifest_path: Optional[Union[str, os.PathLike]] = None,
        control: Optional[EngineControl] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        inflight: Optional[InflightRegistry] = None,
        client: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if resume and journal is None:
            raise ValueError("resume=True requires a journal")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.salt = salt if salt is not None else default_salt()
        self.retries = retries
        self.task_timeout = task_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.keep_going = keep_going
        if journal is not None and not isinstance(journal, CampaignJournal):
            journal = CampaignJournal(journal)
        self.journal = journal
        self.resume = resume
        self.faults = faults
        self.manifest_path = Path(manifest_path) if manifest_path is not None else None
        self.control = control
        self.progress = progress
        self.inflight = inflight
        self.client = client if client is not None else f"engine-{id(self):x}"
        self.counters = CampaignCounters()
        #: Final :class:`CampaignTaskError` per exhausted task (keep_going).
        self.failures: List[CampaignTaskError] = []
        self.interrupted = False
        self.cancelled = False
        self._journaled_keys: Dict[str, Dict[str, Any]] = {}
        self._completions = 0  # executed completions (interrupt_after hook)
        self._claims: Dict[str, InflightEntry] = {}  # keys this engine leads
        if self.resume:
            self._journaled_keys = self.journal.load()
            self.journal.seen(self._journaled_keys)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute a batch; returns payloads in submission order.

        Duplicate tasks (same cache key) within a batch execute once and
        share the payload.  Exhausted tasks raise
        :class:`CampaignTaskError` — or, under ``keep_going``, yield the
        :data:`FAILED` sentinel in their payload slots.
        """
        try:
            return self._run(tasks)
        except KeyboardInterrupt:
            self._on_interrupt()
            raise
        except CampaignCancelled:
            self._on_cancel()
            raise
        finally:
            # Release the journal's single-writer lock between batches:
            # every record is already fsync'd, and a sequential engine
            # (e.g. a --resume rerun in the same process) must be able
            # to claim it.  Appends re-open lazily.
            if self.journal is not None:
                self.journal.close()

    def _run(self, tasks: Sequence[Task]) -> List[Any]:
        t0 = time.perf_counter()
        keys = [task.key(self.salt) for task in tasks]
        self.counters.tasks += len(tasks)

        payloads: Dict[str, Any] = {}
        pending: List[Task] = []
        pending_keys: List[str] = []
        for task, key in zip(tasks, keys):
            if key in payloads or key in pending_keys:
                continue
            resumed = self.resume and key in self._journaled_keys
            hit = self.cache.get(key) if self.cache is not None else MISS
            if hit is not MISS:
                payloads[key] = hit
                if resumed:
                    self.counters.resumed += 1
                self._record_done(
                    TaskTiming(label=task.label, key=key, cached=True,
                               seconds=0.0, metrics=_payload_metrics(hit),
                               fidelity=task.fidelity, **_task_fields(task))
                )
            else:
                # A journaled key that misses the cache (entry evicted or
                # quarantined) falls through to recomputation.
                pending.append(task)
                pending_keys.append(key)

        if pending:
            self._execute_pending(pending, pending_keys, payloads)

        self.counters.elapsed_seconds += time.perf_counter() - t0
        return [payloads[key] for key in keys]

    def _execute_pending(
        self, pending: List[Task], pending_keys: List[str], payloads: Dict[str, Any]
    ) -> None:
        """Execute cache misses, coalescing with other engines when shared.

        Without a shared :class:`InflightRegistry` every miss executes
        here.  With one, each key is claimed first: claimed keys (this
        engine leads) execute locally and publish their payloads; keys
        another engine already leads are *followed* — we block on the
        leader's publication instead of recomputing.  Owned work always
        runs before any follow-wait, so two engines leading disjoint
        halves of the same batch can never deadlock on each other.
        """
        if self.inflight is None:
            self._dispatch(pending, pending_keys, payloads)
            return
        owned: List[Task] = []
        owned_keys: List[str] = []
        followed: List[Tuple[Task, str, InflightEntry]] = []
        try:
            for task, key in zip(pending, pending_keys):
                leader, entry = self.inflight.claim(key, self.client)
                if leader:
                    self._claims[key] = entry
                    owned.append(task)
                    owned_keys.append(key)
                else:
                    followed.append((task, key, entry))
            if owned:
                self._dispatch(owned, owned_keys, payloads)
            for task, key, entry in followed:
                self._follow(task, key, entry, payloads)
        finally:
            # Claims still unpublished here unwound abnormally (cancel,
            # interrupt, first-failure raise): wake their followers so
            # one of them re-claims and executes for itself.
            for key, entry in list(self._claims.items()):
                self.inflight.abandon(entry, "leader aborted without publishing")
                del self._claims[key]

    def _dispatch(
        self, pending: List[Task], pending_keys: List[str], payloads: Dict[str, Any]
    ) -> None:
        if self.jobs == 1 or len(pending) == 1:
            self._run_serial(pending, pending_keys, payloads)
        else:
            self._run_pool(pending, pending_keys, payloads)

    def _follow(
        self, task: Task, key: str, entry: InflightEntry, payloads: Dict[str, Any]
    ) -> None:
        """Wait for another engine's execution of ``key`` and share it.

        A leader that fails (or unwinds without publishing) does not
        poison this engine: the follower re-claims the key and executes
        with its own retry budget, or follows whichever engine beat it
        to the re-claim.
        """
        while True:
            self._await_entry(entry)
            if entry.succeeded:
                payload = entry.payload
                payloads[key] = payload
                self._record_done(
                    TaskTiming(label=task.label, key=key, cached=False,
                               coalesced=True, seconds=0.0,
                               metrics=_payload_metrics(payload),
                               fidelity=task.fidelity, **_task_fields(task))
                )
                return
            leader, entry = self.inflight.claim(key, self.client)
            if leader:
                self._claims[key] = entry
                self._dispatch([task], [key], payloads)
                return

    def _await_entry(self, entry: InflightEntry) -> None:
        """Block until ``entry`` publishes, staying cancellable."""
        while not entry.event.wait(_POLL_TICK):
            if self.control is not None and self.control.cancelled:
                raise CampaignCancelled("campaign cancelled while coalescing")

    # -- serial path ----------------------------------------------------
    def _run_serial(
        self, pending: List[Task], pending_keys: List[str], payloads: Dict[str, Any]
    ) -> None:
        for task, key in zip(pending, pending_keys):
            state = _TaskState(task, key)
            while not state.done:
                if self.control is not None:
                    self.control.checkpoint()  # parks while paused
                delay = state.not_before - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                self._emit("task_started", label=task.label, key=key,
                           attempt=state.attempt)
                try:
                    payload, seconds = run_task_armed(
                        task, key, state.attempt, self.faults
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    self._charge(state, _classify(exc), _describe(exc), payloads)
                else:
                    self._complete(state, payload, seconds, payloads)

    # -- pool path ------------------------------------------------------
    def _run_pool(
        self, pending: List[Task], pending_keys: List[str], payloads: Dict[str, Any]
    ) -> None:
        states = {
            key: _TaskState(task, key) for task, key in zip(pending, pending_keys)
        }
        while True:
            incomplete = [s for s in states.values() if not s.done]
            if not incomplete:
                return
            workers = min(self.jobs, len(incomplete))
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                self._pool_round(pool, states, payloads)
                pool.shutdown()
                return
            except _PoolReset:
                self._kill_pool(pool)
                self.counters.pool_rebuilds += 1
            except BaseException:
                self._kill_pool(pool)
                raise

    def _pool_round(
        self,
        pool: ProcessPoolExecutor,
        states: Dict[str, _TaskState],
        payloads: Dict[str, Any],
    ) -> None:
        """Drive one pool until the batch completes or the pool must die.

        Raises :class:`_PoolReset` after charging the affected tasks
        when a worker crashes (``BrokenProcessPool``) or a task overruns
        ``task_timeout`` — the caller kills this pool and builds a fresh
        one for whatever remains.
        """
        inflight: Dict[Any, str] = {}  # future -> key
        started: Dict[Any, float] = {}  # future -> first-seen-running instant
        try:
            self._pool_loop(pool, states, payloads, inflight, started)
        except _PoolResetTimeout as reset:
            # The overdue task gets the timeout on its record; everything
            # else in flight is charged a preemption (the pool must die,
            # and blame cannot be split more finely than that).
            self._charge(
                states[reset.key], "timeout",
                f"exceeded task_timeout={self.task_timeout}s", payloads,
            )
            for key in set(inflight.values()):
                state = states[key]
                if key != reset.key and not state.done:
                    self._charge(
                        state, "preempted",
                        "pool killed while reclaiming a hung worker", payloads,
                    )
            raise _PoolReset()
        except BrokenProcessPool:
            # A worker died (real crash or injected os._exit).  The pool
            # is unusable and the crash cannot be attributed to one
            # future, so every in-flight task is charged one failure.
            for key in set(inflight.values()):
                if not states[key].done:
                    self._charge(
                        states[key], "worker-crash",
                        "worker process died while task was in flight", payloads,
                    )
            raise _PoolReset()

    def _pool_loop(
        self,
        pool: ProcessPoolExecutor,
        states: Dict[str, _TaskState],
        payloads: Dict[str, Any],
        inflight: Dict[Any, str],
        started: Dict[Any, float],
    ) -> None:
        while True:
            paused = False
            if self.control is not None:
                if self.control.cancelled:
                    raise CampaignCancelled("campaign cancelled")
                paused = self.control.paused
            now = time.monotonic()
            busy = set(inflight.values())
            ready = [] if paused else [
                s for s in states.values()
                if not s.done and s.key not in busy and s.not_before <= now
            ]
            for state in ready:
                self._emit("task_started", label=state.task.label,
                           key=state.key, attempt=state.attempt)
                future = pool.submit(
                    run_task_armed, state.task, state.key, state.attempt,
                    self.faults,
                )
                inflight[future] = state.key
            if not inflight:
                if paused:
                    # Nothing in flight and submissions held: park until
                    # resume/cancel (bounded waits keep cancel prompt).
                    self.control.checkpoint(_POLL_TICK)
                    continue
                waiting = [s.not_before for s in states.values() if not s.done]
                if not waiting:
                    return  # batch complete
                time.sleep(max(0.0, min(waiting) - time.monotonic()))
                continue

            # Poll when a deadline, a backoff or an external control
            # needs watching; block indefinitely otherwise (the common
            # fault-free, uncontrolled case).
            poll = (
                _POLL_TICK
                if self.task_timeout is not None
                or self.control is not None
                or any(s.not_before > now for s in states.values() if not s.done)
                else None
            )
            done_set, _ = wait(
                set(inflight), timeout=poll, return_when=FIRST_COMPLETED
            )
            self._check_deadlines(inflight, started, done_set)
            for future in done_set:
                key = inflight.pop(future)
                started.pop(future, None)
                state = states[key]
                try:
                    payload, seconds = future.result()
                except KeyboardInterrupt:
                    raise
                except BrokenProcessPool:
                    inflight[future] = key  # restore: charged by the caller
                    raise
                except Exception as exc:
                    self._charge(state, _classify(exc), _describe(exc), payloads)
                else:
                    self._complete(state, payload, seconds, payloads)

    def _check_deadlines(
        self,
        inflight: Dict[Any, str],
        started: Dict[Any, float],
        done_set,
    ) -> None:
        """Stamp run starts and enforce ``task_timeout`` on live futures."""
        if self.task_timeout is None:
            return
        now = time.monotonic()
        overdue = None
        for future, key in inflight.items():
            if future in done_set:
                continue
            if future not in started:
                if future.running():
                    started[future] = now
            elif now - started[future] > self.task_timeout:
                overdue = (future, key)
                break
        if overdue is None:
            return
        # Kill the whole pool: a hung worker cannot be cancelled through
        # the executor API.  The overdue task is charged a timeout; other
        # in-flight tasks are charged a preemption (attribution is
        # impossible once the pool dies — bounded either way).
        future, key = overdue
        self.counters.timeouts += 1
        raise _PoolResetTimeout(future, key)

    # -- bookkeeping ----------------------------------------------------
    def _charge(
        self,
        state: _TaskState,
        kind: str,
        error: str,
        payloads: Dict[str, Any],
    ) -> None:
        """Record one failure; schedule a retry or finalize the task."""
        state.history.append(
            {"attempt": state.attempt, "kind": kind, "error": error}
        )
        if len(state.history) > self.retries:
            err = CampaignTaskError(state.task.label, state.key, state.history)
            state.done = True
            self.counters.failed += 1
            self._publish(state.key, error=err)
            self._emit("task_failed", label=state.task.label, key=state.key,
                       attempts=len(state.history), error=error)
            if not self.keep_going:
                raise err
            self.failures.append(err)
            payloads[state.key] = FAILED
            self._record_done(
                TaskTiming(label=state.task.label, key=state.key, cached=False,
                           seconds=0.0, metrics=None,
                           attempts=len(state.history), failed=True,
                           fidelity=state.task.fidelity,
                           **_task_fields(state.task))
            )
            return
        self.counters.retries += 1
        backoff = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (len(state.history) - 1)),
        )
        state.not_before = time.monotonic() + backoff
        self._emit("task_retried", label=state.task.label, key=state.key,
                   attempt=state.attempt, kind=kind, error=error,
                   backoff=backoff)

    def _complete(
        self,
        state: _TaskState,
        payload: Any,
        seconds: float,
        payloads: Dict[str, Any],
    ) -> None:
        state.done = True
        payloads[state.key] = payload
        if self.cache is not None:
            self.cache.put(state.key, payload)
            if (
                self.faults is not None
                and self.cache.enabled
                and self.faults.decide_corrupt(state.key)
            ):
                corrupt_file(self.cache.path_for(state.key), self.faults.seed)
        self._publish(state.key, payload=payload)
        self._record_done(
            TaskTiming(label=state.task.label, key=state.key, cached=False,
                       seconds=seconds, metrics=_payload_metrics(payload),
                       attempts=state.attempt + 1,
                       fidelity=state.task.fidelity,
                       **_task_fields(state.task))
        )
        self._completions += 1
        if (
            self.faults is not None
            and self.faults.interrupt_after is not None
            and self._completions >= self.faults.interrupt_after
        ):
            raise KeyboardInterrupt(
                f"injected interrupt after {self._completions} completions"
            )

    def _publish(self, key: str, payload: Any = None, error: Optional[BaseException] = None) -> None:
        """Resolve this engine's in-flight claim on ``key``, if any."""
        entry = self._claims.pop(key, None)
        if entry is None:
            return
        if error is not None:
            self.inflight.publish(entry, error=error)
        else:
            self.inflight.publish(entry, payload=payload)

    def _emit(self, event: str, **fields: Any) -> None:
        """Push one progress event to the ``progress`` callback (if any).

        Subscriber bugs must never take the campaign down, so callback
        exceptions are swallowed here.
        """
        if self.progress is None:
            return
        try:
            self.progress({"event": event, "client": self.client, **fields})
        except Exception:
            pass

    def _record_done(self, timing: TaskTiming) -> None:
        self.counters.record(timing)
        if self.journal is not None and not timing.failed:
            self.journal.append(
                {
                    "key": timing.key,
                    "label": timing.label,
                    "cached": timing.cached,
                    "coalesced": timing.coalesced,
                    "seconds": round(timing.seconds, 6),
                    "attempts": timing.attempts,
                    "fidelity": timing.fidelity,
                }
            )
        self._emit("task_completed", label=timing.label, key=timing.key,
                   cached=timing.cached, coalesced=timing.coalesced,
                   seconds=round(timing.seconds, 6), attempts=timing.attempts,
                   failed=timing.failed)

    def _on_cancel(self) -> None:
        """Cancel landing spot: persist progress before propagating."""
        self.cancelled = True
        if self.manifest_path is not None:
            try:
                self.write_manifest(self.manifest_path)
            except OSError:
                pass  # the journal already has every completed record

    def _on_interrupt(self) -> None:
        """Ctrl-C landing spot: persist progress before propagating."""
        self.interrupted = True
        if self.journal is not None:
            self.journal.close()  # every record is already on disk
        if self.manifest_path is not None:
            try:
                self.write_manifest(self.manifest_path)
            except OSError:
                pass  # dying anyway; the journal is the source of truth

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when workers are hung or dead.

        ``shutdown()`` alone would join hung workers forever, so worker
        processes are terminated first (via the executor's process map —
        private but stable across CPython 3.8-3.13).
        """
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass

    def run_one(self, task: Task) -> Any:
        """Convenience wrapper: execute a single task through the cache."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """Everything a rerun needs to audit this campaign, as plain data."""
        cache_info: Dict[str, Any] = {"enabled": self.cache is not None}
        if self.cache is not None:
            cache_info.update(
                root=str(self.cache.root) if self.cache.enabled else None,
                **self.cache.counter_snapshot(),
            )
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "git_commit": git_commit(),
            "salt": self.salt,
            "jobs": self.jobs,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "interrupted": self.interrupted,
            "cancelled": self.cancelled,
            "cache": cache_info,
            "counters": self.counters.snapshot(),
            "resilience": {
                "retries_budget": self.retries,
                "task_timeout": self.task_timeout,
                "keep_going": self.keep_going,
                "resume": self.resume,
                "journal": str(self.journal.path) if self.journal else None,
                "faults_armed": self.faults is not None,
                "failed_tasks": [
                    {"label": f.label, "key": f.key, "history": f.history}
                    for f in self.failures
                ],
            },
            "metrics": self.metrics_snapshot(),
            "tasks": [
                {
                    "label": t.label,
                    "kind": t.kind,
                    "benchmark": t.benchmark,
                    "design": t.design,
                    "key": t.key,
                    "cached": t.cached,
                    "coalesced": t.coalesced,
                    "seconds": round(t.seconds, 6),
                    "attempts": t.attempts,
                    "failed": t.failed,
                    "fidelity": t.fidelity,
                    # Per-task metrics snapshot (repro.obs.metrics); None
                    # for payloads that carry none.
                    "metrics": t.metrics,
                }
                for t in self.counters.timings
            ],
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Campaign counters as a ``repro.obs`` metrics snapshot.

        Same flat-namespace shape as the per-run simulation metrics
        (``campaign.retries``, ``campaign.cache.quarantined``, …) so
        dashboards can treat campaign health like any other component.
        """
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry(prefix="campaign.")
        c = self.counters
        for name, value in (
            ("tasks", c.tasks),
            ("unique_tasks", c.unique_tasks),
            ("executed", c.executed),
            ("retries", c.retries),
            ("timeouts", c.timeouts),
            ("pool_rebuilds", c.pool_rebuilds),
            ("failed", c.failed),
            ("resumed", c.resumed),
            ("coalesced", c.coalesced),
            ("cache.hits", c.cache_hits),
            ("cache.misses", c.cache_misses),
        ):
            reg.counter(name).inc(value)
        if self.cache is not None:
            reg.counter("cache.quarantined").inc(self.cache.quarantined)
            reg.counter("cache.quarantine_dropped").inc(self.cache.quarantine_dropped)
            reg.counter("cache.corrupt").inc(self.cache.corrupt)
        reg.gauge("interrupted").set(int(self.interrupted))
        return reg.snapshot()

    def write_manifest(self, path: Union[str, os.PathLike]) -> Path:
        """Write the manifest as JSON (atomically); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self.manifest(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cache = "on" if self.cache is not None else "off"
        return (
            f"<CampaignEngine jobs={self.jobs} cache={cache} "
            f"retries={self.retries}>"
        )


class _PoolResetTimeout(_PoolReset):
    """Pool reset triggered by a task deadline (carries the culprit)."""

    def __init__(self, future: Any, key: str) -> None:
        super().__init__()
        self.future = future
        self.key = key


def _classify(exc: Exception) -> str:
    """Failure-kind tag for the attempt history (stable, greppable)."""
    from repro import faults

    if isinstance(exc, faults.TransientFault):
        return "transient"
    if isinstance(exc, faults.HangFault):
        return "hang"
    if isinstance(exc, faults.WorkerCrashFault):
        return "worker-crash"
    return "error"


def _describe(exc: Exception) -> str:
    return f"{type(exc).__name__}: {exc}"


def run_campaign(
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    **engine_kwargs: Any,
) -> List[Any]:
    """One-shot helper: build an engine, run a batch, return payloads."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return CampaignEngine(jobs=jobs, cache=cache, **engine_kwargs).run(tasks)
