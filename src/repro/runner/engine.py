"""The campaign engine: parallel task execution behind the result cache.

:class:`CampaignEngine` is the one place the repository fans simulation
work out over processes.  Given a batch of :class:`~repro.runner.task.Task`
objects it

1. computes each task's stable cache key and probes the persistent
   :class:`~repro.runner.cache.ResultCache` (when one is attached),
2. deduplicates the remaining misses by key and executes them — serially
   for ``jobs=1`` (also the fallback for single-task batches, where a
   pool would only add fork latency), or on a ``ProcessPoolExecutor``
   otherwise,
3. writes results back to the cache atomically and records per-task wall
   times and hit/miss counters
   (:class:`~repro.stats.campaign.CampaignCounters`),

and returns payloads aligned with the submitted batch.  Because every
task is executed from scratch in its own interpreter state (workers
rebuild traces and policy objects from the task description), results
are bit-identical regardless of ``jobs`` or submission order — the
property the determinism test layer locks in.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runner.cache import MISS, ResultCache, default_salt
from repro.runner.task import Task, run_task_timed
from repro.stats.campaign import CampaignCounters, TaskTiming

__all__ = ["CampaignEngine", "run_campaign"]


def _payload_metrics(payload: Any) -> Optional[Dict[str, Any]]:
    """Pull the namespaced metrics snapshot out of a task payload.

    Simulation payloads are :class:`~repro.sim.simulator.RunResult`
    objects carrying ``extras["metrics"]``; cache entries written before
    the metrics registry existed (or non-simulation payloads) yield
    ``None``.  Duck-typed so the runner stays import-free of the sim.
    """
    extras = getattr(payload, "extras", None)
    if extras is None and isinstance(payload, dict):
        extras = payload
    if isinstance(extras, dict):
        metrics = extras.get("metrics")
        if isinstance(metrics, dict):
            return metrics
    return None


class CampaignEngine:
    """Executes campaign tasks in parallel, behind the persistent cache.

    Args:
        jobs: Worker process count; ``None`` means ``os.cpu_count()``,
            ``1`` forces fully serial in-process execution.
        cache: Persistent result cache, or ``None`` to disable all reads
            and writes (the ``--no-cache`` path).
        salt: Code-version salt folded into every key; defaults to
            :func:`repro.runner.cache.default_salt`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        salt: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.salt = salt if salt is not None else default_salt()
        self.counters = CampaignCounters()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute a batch; returns payloads in submission order.

        Duplicate tasks (same cache key) within a batch execute once and
        share the payload.
        """
        t0 = time.perf_counter()
        keys = [task.key(self.salt) for task in tasks]
        self.counters.tasks += len(tasks)

        payloads: Dict[str, Any] = {}
        pending: List[Task] = []
        pending_keys: List[str] = []
        for task, key in zip(tasks, keys):
            if key in payloads or key in pending_keys:
                continue
            hit = self.cache.get(key) if self.cache is not None else MISS
            if hit is not MISS:
                payloads[key] = hit
                self.counters.record(
                    TaskTiming(label=task.label, key=key, cached=True,
                               seconds=0.0, metrics=_payload_metrics(hit))
                )
            else:
                pending.append(task)
                pending_keys.append(key)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for task, key in zip(pending, pending_keys):
                    payload, seconds = run_task_timed(task)
                    self._complete(key, task, payload, seconds, payloads)
            else:
                self._run_pool(pending, pending_keys, payloads)

        self.counters.elapsed_seconds += time.perf_counter() - t0
        return [payloads[key] for key in keys]

    def _run_pool(
        self, pending: List[Task], pending_keys: List[str], payloads: Dict[str, Any]
    ) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_task_timed, task): (key, task)
                for task, key in zip(pending, pending_keys)
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    key, task = futures[future]
                    payload, seconds = future.result()
                    self._complete(key, task, payload, seconds, payloads)

    def _complete(
        self, key: str, task: Task, payload: Any, seconds: float, payloads: Dict[str, Any]
    ) -> None:
        payloads[key] = payload
        if self.cache is not None:
            self.cache.put(key, payload)
        self.counters.record(
            TaskTiming(label=task.label, key=key, cached=False,
                       seconds=seconds, metrics=_payload_metrics(payload))
        )

    def run_one(self, task: Task) -> Any:
        """Convenience wrapper: execute a single task through the cache."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """Everything a rerun needs to audit this campaign, as plain data."""
        cache_info: Dict[str, Any] = {"enabled": self.cache is not None}
        if self.cache is not None:
            cache_info.update(
                root=str(self.cache.root) if self.cache.enabled else None,
                **self.cache.counter_snapshot(),
            )
        return {
            "salt": self.salt,
            "jobs": self.jobs,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "cache": cache_info,
            "counters": self.counters.snapshot(),
            "tasks": [
                {
                    "label": t.label,
                    "key": t.key,
                    "cached": t.cached,
                    "seconds": round(t.seconds, 6),
                    # Per-task metrics snapshot (repro.obs.metrics); None
                    # for payloads that carry none.
                    "metrics": t.metrics,
                }
                for t in self.counters.timings
            ],
        }

    def write_manifest(self, path: Union[str, os.PathLike]) -> Path:
        """Write the manifest as JSON (atomically); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self.manifest(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cache = "on" if self.cache is not None else "off"
        return f"<CampaignEngine jobs={self.jobs} cache={cache}>"


def run_campaign(
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> List[Any]:
    """One-shot helper: build an engine, run a batch, return payloads."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return CampaignEngine(jobs=jobs, cache=cache).run(tasks)
