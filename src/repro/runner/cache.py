"""Persistent, content-addressed result cache for simulation campaigns.

Every campaign task (one ``simulate``/``replay`` call or one SPDP-B PD
sweep) is identified by a *stable key*: the SHA-256 of a canonical JSON
rendering of everything that determines its outcome — benchmark name,
trace seed and scale (or a digest of the trace contents for ad-hoc
traces), the design key and its parameters, every :class:`GPUConfig`
field, and a code-version salt derived from ``repro.__version__``.  The
key is therefore stable across process restarts and machines, and any
change to an input produces a different key (i.e. an automatic
invalidation).

Entries are stored one-file-per-result under a two-character shard
directory, each file carrying a magic header and a SHA-256 checksum of
its pickled payload::

    <root>/ab/abcdef....pkl     = MAGIC + sha256(body) + pickle(payload)

Writes are atomic (temp file + ``os.replace``), so a crashed or killed
run can never leave a half-written entry that poisons later runs;
corrupted or truncated files fail the checksum and are treated as
misses, never as errors.  Damaged entries are not silently discarded:
they are *quarantined* — moved to ``<root>/quarantine/<key>.pkl``
(``<key>.<n>.pkl`` when the key was quarantined before, so repeated
corruption never overwrites earlier evidence) and counted — so disk rot
stays visible in campaign manifests while the engine transparently
recomputes the result.  Quarantine destinations are claimed with
``O_EXCL`` before the move, so concurrent processes quarantining the
same key land in distinct files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Union

__all__ = [
    "MISS",
    "CACHE_SCHEMA",
    "QUARANTINE_DIR",
    "ResultCache",
    "stable_hash",
    "config_fingerprint",
    "default_salt",
]

#: Bump to invalidate every existing cache entry after a format change.
CACHE_SCHEMA = 1

#: Magic header identifying a cache entry file (and its layout version).
_MAGIC = b"RPROCACHE1\n"

#: Pinned pickle protocol so entry bytes are reproducible run-to-run.
_PICKLE_PROTOCOL = 4

#: Sentinel returned by :meth:`ResultCache.get` when a key is absent.
MISS = object()

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"


def default_salt() -> str:
    """Code-version salt folded into every cache key.

    Derived from the package version plus the cache schema, so releasing
    a new ``repro`` version (or bumping :data:`CACHE_SCHEMA`) orphans old
    entries instead of serving results computed by different code.
    """
    from repro import __version__

    return f"repro-{__version__}-schema{CACHE_SCHEMA}"


def _jsonify(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def stable_hash(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``payload``.

    Keys are sorted and separators pinned, so the digest is independent
    of dict insertion order, ``PYTHONHASHSEED`` and the process that
    computes it.  Dataclasses (e.g. :class:`GPUConfig`) are flattened to
    their field dicts; tuples and lists hash identically.
    """
    canon = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def config_fingerprint(config: Any) -> Mapping[str, Any]:
    """Nested field dict of a (frozen) config dataclass, for hashing."""
    return dataclasses.asdict(config)


class ResultCache:
    """On-disk result store with hit/miss/corruption counters.

    Args:
        root: Cache directory; created on first write.  ``None`` builds
            a disabled cache (every get misses, every put is dropped) —
            the ``--no-cache`` execution path.
        readonly: Serve hits but never write (useful for forensics).
    """

    def __init__(
        self, root: Optional[Union[str, os.PathLike]], readonly: bool = False
    ) -> None:
        self.root: Optional[Path] = Path(root) if root is not None else None
        self.readonly = readonly
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.quarantined = 0
        #: Damaged entries that could not be moved to quarantine/ and
        #: were unlinked instead (counted separately so ``quarantined``
        #: only ever reports preserved evidence, never under-reports it).
        self.quarantine_dropped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, key: str) -> Path:
        """Entry file for ``key`` (two-character shard layout)."""
        if self.root is None:
            raise ValueError("cache is disabled (root=None)")
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def quarantine_root(self) -> Path:
        """Directory corrupt entries are moved to (may not exist yet)."""
        if self.root is None:
            raise ValueError("cache is disabled (root=None)")
        return self.root / QUARANTINE_DIR

    def quarantine_path_for(self, key: str) -> Path:
        """First quarantine destination for ``key`` (later ones are
        suffixed ``<key>.<n>.pkl``; see :meth:`quarantine_paths_for`)."""
        return self.quarantine_root / f"{key}.pkl"

    def quarantine_paths_for(self, key: str) -> list:
        """Every quarantined blob for ``key``, oldest-first by suffix."""
        root = self.quarantine_root
        if not root.is_dir():
            return []
        return sorted(root.glob(f"{key}*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self.enabled and self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.enabled or not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.pkl"))

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Payload for ``key``, or :data:`MISS`.

        A file that is missing, truncated, checksum-mismatched or
        unpicklable counts as a miss — a damaged cache degrades to
        recomputation, never to a crash or a wrong result.  Damaged
        files are moved to ``quarantine/`` (best-effort) and counted,
        so corruption is observable and the evidence survives for
        forensics instead of vanishing as a silent miss.
        """
        if not self.enabled:
            self.misses += 1
            return MISS
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return MISS
        payload = self._decode(blob)
        if payload is MISS:
            self.corrupt += 1
            self.misses += 1
            self._quarantine(key, path)
            return MISS
        self.hits += 1
        return payload

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a damaged entry aside so the slot is clean for re-put.

        Each quarantine lands in its own file: the destination is claimed
        with ``O_EXCL`` (first free of ``<key>.pkl``, ``<key>.1.pkl``, …)
        before the move, so a second corruption of the same key — or a
        concurrent process quarantining it — never overwrites earlier
        forensic evidence.  When the move itself is impossible the entry
        is unlinked instead and counted under ``quarantine_dropped``, so
        ``quarantined`` only ever reports blobs that really survived.
        """
        claimed: Optional[Path] = None
        try:
            root = self.quarantine_root
            root.mkdir(parents=True, exist_ok=True)
            dest = self.quarantine_path_for(key)
            n = 0
            while True:
                try:
                    os.close(os.open(dest, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                    claimed = dest
                    break
                except FileExistsError:
                    n += 1
                    dest = root / f"{key}.{n}.pkl"
            os.replace(path, dest)
            self.quarantined += 1
        except OSError:
            # The move failed (another process may have raced the entry
            # away, or quarantine/ is unwritable).  Release the claimed
            # placeholder so it never reads as evidence, then fall back
            # to unlinking; the slot must not keep serving rot.
            if claimed is not None:
                try:
                    os.unlink(claimed)
                except OSError:
                    pass
            try:
                path.unlink()
                self.quarantine_dropped += 1
            except OSError:
                pass

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Raw entry bytes (checksum included) — for byte-identity tests."""
        if not self.enabled:
            return None
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` atomically (temp + replace)."""
        if not self.enabled or self.readonly:
            return
        body = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(body).digest() + body
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (``key``) or every entry; returns live entries
        removed.

        Quarantined blobs for the invalidated key(s) are swept too —
        ``--invalidate`` must really clear a key's on-disk footprint, not
        leave stale forensic copies behind — but they never count toward
        the return value (they were never live entries).
        """
        if not self.enabled or not self.root.is_dir():
            return 0
        if key is not None:
            victims = [self.path_for(key)]
            stale = self.quarantine_paths_for(key)
        else:
            victims = list(self.root.glob("??/*.pkl"))
            stale = (
                list(self.quarantine_root.glob("*.pkl"))
                if self.quarantine_root.is_dir()
                else []
            )
        removed = 0
        for path in victims:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in stale:
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    @staticmethod
    def _decode(blob: bytes) -> Any:
        if not blob.startswith(_MAGIC):
            return MISS
        digest = blob[len(_MAGIC) : len(_MAGIC) + 32]
        body = blob[len(_MAGIC) + 32 :]
        if len(digest) != 32 or hashlib.sha256(body).digest() != digest:
            return MISS
        try:
            return pickle.loads(body)
        except Exception:
            return MISS

    def counter_snapshot(self) -> Mapping[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "quarantine_dropped": self.quarantine_dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = str(self.root) if self.enabled else "disabled"
        return f"<ResultCache {state}: {self.hits} hits / {self.misses} misses>"
