"""Typed simulation events and the event bus.

The observability layer is *pull-free*: instrumented components hold an
``obs`` attribute that is ``None`` by default, and every emission site is
guarded by ``if self.obs is not None``.  A disabled run therefore costs
one attribute load and one branch per would-be event — no event objects,
no dict packing, no sink dispatch — which is what keeps the tracing-off
overhead within the <5 % budget enforced by CI.

Events are flat records ``(kind, cycle, src, args)``:

* ``kind`` — one of the ``EV_*`` constants below (the event taxonomy),
* ``cycle`` — simulated core cycle at which the event takes effect.
  Because the timing model computes completion times inline, events are
  emitted in *causal* order, not globally sorted by cycle; every event
  also carries a monotonically increasing ``seq`` so sinks and the
  diagnostics layer can recover a stable order.
* ``src`` — the emitting component (``"L1[3]"``, ``"noc"``, ``"MC[1]"``),
* ``args`` — kind-specific payload (set index, reason string, ...).

See docs/observability.md for the full taxonomy and payload schemas.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "EventBus",
    "EVENT_KINDS",
    # cache events
    "EV_HIT",
    "EV_MISS",
    "EV_FILL",
    "EV_BYPASS",
    "EV_EVICT",
    # G-Cache control-loop events
    "EV_BYPASS_DECISION",
    "EV_VICTIM_SET",
    "EV_VICTIM_CLEAR",
    "EV_SWITCH_ON",
    "EV_SWITCH_OFF",
    "EV_SWITCH_SHUTDOWN",
    "EV_M_ADAPT",
    # MSHR events
    "EV_MSHR_ALLOC",
    "EV_MSHR_MERGE",
    "EV_MSHR_STALL",
    # interconnect / DRAM events
    "EV_NOC_ENQUEUE",
    "EV_NOC_DEQUEUE",
    "EV_DRAM_ROW_HIT",
    "EV_DRAM_ROW_MISS",
    # core events
    "EV_CTA_LAUNCH",
    "EV_CTA_DONE",
]

# --- Event taxonomy ---------------------------------------------------
# Cache array events (any cache).
EV_HIT = "cache.hit"
EV_MISS = "cache.miss"
EV_FILL = "cache.fill"
EV_BYPASS = "cache.bypass"
EV_EVICT = "cache.evict"

# G-Cache control loop (L1 management policy + L2 victim directory).
EV_BYPASS_DECISION = "gcache.bypass_decision"
EV_VICTIM_SET = "victim.set"
EV_VICTIM_CLEAR = "victim.clear"
EV_SWITCH_ON = "switch.on"
EV_SWITCH_OFF = "switch.off"
EV_SWITCH_SHUTDOWN = "switch.shutdown"
EV_M_ADAPT = "gcache.m_adapt"

# MSHR file.
EV_MSHR_ALLOC = "mshr.alloc"
EV_MSHR_MERGE = "mshr.merge"
EV_MSHR_STALL = "mshr.stall"

# Interconnect and DRAM.
EV_NOC_ENQUEUE = "noc.enqueue"
EV_NOC_DEQUEUE = "noc.dequeue"
EV_DRAM_ROW_HIT = "dram.row_hit"
EV_DRAM_ROW_MISS = "dram.row_miss"

# SIMT core lifecycle.
EV_CTA_LAUNCH = "core.cta_launch"
EV_CTA_DONE = "core.cta_done"

#: Every known event kind (docs + validation).
EVENT_KINDS = (
    EV_HIT,
    EV_MISS,
    EV_FILL,
    EV_BYPASS,
    EV_EVICT,
    EV_BYPASS_DECISION,
    EV_VICTIM_SET,
    EV_VICTIM_CLEAR,
    EV_SWITCH_ON,
    EV_SWITCH_OFF,
    EV_SWITCH_SHUTDOWN,
    EV_M_ADAPT,
    EV_MSHR_ALLOC,
    EV_MSHR_MERGE,
    EV_MSHR_STALL,
    EV_NOC_ENQUEUE,
    EV_NOC_DEQUEUE,
    EV_DRAM_ROW_HIT,
    EV_DRAM_ROW_MISS,
    EV_CTA_LAUNCH,
    EV_CTA_DONE,
)


class Event:
    """One simulation event (immutable by convention)."""

    __slots__ = ("kind", "cycle", "src", "seq", "args")

    def __init__(self, kind: str, cycle: int, src: str, seq: int, args: Dict) -> None:
        self.kind = kind
        self.cycle = cycle
        self.src = src
        self.seq = seq
        self.args = args

    def as_dict(self) -> Dict:
        """Plain-dict view (JSONL sink / tests)."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "src": self.src,
            "seq": self.seq,
            **self.args,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event #{self.seq} {self.kind}@{self.cycle} {self.src} {self.args}>"


class EventBus:
    """Dispatches events to attached sinks.

    Args:
        sinks: Initial sink list; each sink needs ``write(event)`` and
            ``close()`` (see :mod:`repro.obs.sinks`).
        kinds: Optional whitelist of event kinds to record; ``None``
            records everything.  Filtering at the bus keeps call sites
            unconditional.
    """

    def __init__(
        self,
        sinks: Optional[Iterable] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self.sinks: List = list(sinks) if sinks is not None else []
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._seq = 0
        self.events_emitted = 0
        self.events_dropped = 0

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, kind: str, cycle: int, src: str, **args) -> None:
        """Record one event; called only from enabled (obs-wired) paths."""
        if self._kinds is not None and kind not in self._kinds:
            self.events_dropped += 1
            return
        event = Event(kind, cycle, src, self._seq, args)
        self._seq += 1
        self.events_emitted += 1
        for sink in self.sinks:
            sink.write(event)

    def flush(self) -> None:
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        """Flush and close every sink (end of run)."""
        for sink in self.sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventBus {len(self.sinks)} sinks, {self.events_emitted} events>"
