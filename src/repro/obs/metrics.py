"""Hierarchical per-component metrics registry.

Components publish namespaced counters/gauges/histograms into one
:class:`MetricsRegistry` per run; the registry's flat :meth:`snapshot`
is what ``RunResult.extras["metrics"]`` carries, what
:func:`repro.stats.report.render_metrics` tabulates, and what campaign
manifests embed per task — replacing the previous ad-hoc pattern of
reaching into component attributes from the simulator.

Names are dot-separated paths, most-significant first, e.g.
``l1.loads``, ``gcache.switch.activations``, ``dram.0.row_hits``.
Convention: ``<component>[.<instance>].<metric>``; aggregated (summed
across instances) metrics omit the instance segment.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["CounterMetric", "GaugeMetric", "HistogramMetric", "MetricsRegistry"]

Number = Union[int, float]


class CounterMetric:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only go up (inc {n})")
        self.value += n

    def snapshot(self) -> Number:
        return self.value

    def merge(self, other: "CounterMetric") -> None:
        self.value += other.value


class GaugeMetric:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value

    def merge(self, other: "GaugeMetric") -> None:
        self.value = other.value


class HistogramMetric:
    """Streaming summary (count / sum / min / max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
        }

    def merge(self, other: "HistogramMetric") -> None:
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            theirs = getattr(other, bound)
            if theirs is None:
                continue
            mine = getattr(self, bound)
            if mine is None or (theirs < mine if bound == "min" else theirs > mine):
                setattr(self, bound, theirs)


class MetricsRegistry:
    """Get-or-create registry of namespaced metrics.

    >>> reg = MetricsRegistry()
    >>> reg.counter("l1.loads").inc(3)
    >>> reg.scope("noc").counter("packets").inc()
    >>> reg.snapshot()["l1.loads"], reg.snapshot()["noc.packets"]
    (3, 1)
    """

    def __init__(self, prefix: str = "") -> None:
        self._metrics: Dict[str, object] = {}
        self._prefix = prefix

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def _get(self, name: str, cls):
        if not name:
            raise ValueError("metric name cannot be empty")
        full = f"{self._prefix}{name}"
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(full)
            self._metrics[full] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {full!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric)

    def histogram(self, name: str) -> HistogramMetric:
        return self._get(name, HistogramMetric)

    def scope(self, prefix: str) -> "MetricsRegistry":
        """A view of this registry that prepends ``prefix.`` to names.

        Scoped views share the parent's storage, so a component can be
        handed ``registry.scope("l1.3")`` and stay ignorant of the
        hierarchy above it.
        """
        view = MetricsRegistry.__new__(MetricsRegistry)
        view._metrics = self._metrics
        view._prefix = f"{self._prefix}{prefix}."
        return view

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{name: value}`` dict; histograms expand to summaries."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (same-name metrics must agree in kind)."""
        for name, theirs in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                mine = type(theirs)(name)
                self._metrics[name] = mine
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge {name!r}: {mine.kind} vs {theirs.kind}"
                )
            mine.merge(theirs)

    def set_many(self, values: Dict[str, Number], kind: str = "gauge") -> None:
        """Bulk-load plain values (used when importing legacy snapshots)."""
        for name, value in values.items():
            if kind == "counter":
                self.counter(name).inc(int(value))
            else:
                self.gauge(name).set(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricsRegistry {len(self._metrics)} metrics prefix={self._prefix!r}>"


def _collect_cache_stats(scope: MetricsRegistry, stats) -> None:
    scope.counter("loads").inc(stats.loads)
    scope.counter("stores").inc(stats.stores)
    scope.counter("load_hits").inc(stats.load_hits)
    scope.counter("store_hits").inc(stats.store_hits)
    scope.counter("mshr_merges").inc(stats.mshr_merges)
    scope.counter("fills").inc(stats.fills)
    scope.counter("bypasses").inc(stats.bypasses)
    scope.counter("evictions").inc(stats.evictions)
    scope.counter("writebacks").inc(stats.writebacks)
    scope.gauge("miss_rate").set(stats.miss_rate)
    scope.gauge("bypass_ratio").set(stats.bypass_ratio)


def collect_run_metrics(gpu, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Populate a registry from a finished :class:`~repro.sim.simulator.GPU`.

    One end-of-run pass over the component tree — the cost is independent
    of trace length, so it runs for every simulation, traced or not.
    All components are accessed duck-typed; design-specific metrics
    (G-Cache switches, victim directory) appear only when present.
    """
    reg = registry if registry is not None else MetricsRegistry()
    mem = gpu.memory

    _collect_cache_stats(reg.scope("l1"), mem.l1_stats())
    _collect_cache_stats(reg.scope("l2"), mem.l2_stats())

    mshr = reg.scope("mshr")
    mshr.counter("allocations").inc(sum(m.total_allocations for m in mem.mshrs))
    mshr.counter("merges").inc(sum(m.total_merges for m in mem.mshrs))
    mshr.counter("full_stalls").inc(sum(m.full_stalls for m in mem.mshrs))
    mshr.gauge("peak_occupancy").set(max(m.peak_occupancy for m in mem.mshrs))

    noc = reg.scope("noc")
    noc.counter("packets").inc(mem.noc.packets_sent)
    noc.counter("hops").inc(mem.noc.total_hops)
    noc.gauge("avg_hops").set(mem.noc.average_hops)

    dram = reg.scope("dram")
    dram.counter("reads").inc(sum(mc.reads for mc in mem.mcs))
    dram.counter("writes").inc(sum(mc.writes for mc in mem.mcs))
    dram.counter("row_hits").inc(
        sum(b.row_hits for mc in mem.mcs for b in mc.banks)
    )
    dram.counter("row_misses").inc(
        sum(b.row_misses for mc in mem.mcs for b in mc.banks)
    )
    dram.gauge("row_hit_rate").set(mem.dram_row_hit_rate)

    core = reg.scope("core")
    core.counter("instructions").inc(sum(c.instructions for c in gpu.cores))
    core.gauge("cycles").set(max((c.finish_time for c in gpu.cores), default=0))
    lat = core.histogram("load_latency")
    if mem.load_count:
        # The memory system keeps only the running sum; surface it as a
        # one-bucket summary so mean latency lands in the same namespace.
        lat.count = mem.load_count
        lat.total = mem.load_latency_sum

    if mem.victim_dir is not None:
        victim = reg.scope("victim")
        victim.counter("hints_returned").inc(mem.victim_dir.hints_returned)
        victim.counter("contentions_detected").inc(
            mem.victim_dir.contentions_detected
        )

    gc = reg.scope("gcache")
    seen_gcache = False
    for l1 in mem.l1s:
        mgmt = l1.mgmt
        if not hasattr(mgmt, "switches") or mgmt.switches is None:
            continue
        seen_gcache = True
        gc.counter("hint_fills").inc(mgmt.hint_fills)
        gc.counter("total_fills").inc(mgmt.total_fills)
        gc.counter("agings").inc(mgmt.agings)
        gc.counter("switch.activations").inc(mgmt.switches.activations)
        gc.counter("switch.shutdowns").inc(mgmt.switches.shutdowns)
    if seen_gcache:
        gc.gauge("m").set(mem.l1s[0].mgmt.m)
        gc.gauge("switch.fraction_on").set(
            sum(l1.mgmt.switches.fraction_on for l1 in mem.l1s) / len(mem.l1s)
        )
    return reg


__all__.append("collect_run_metrics")
