"""Convergence diagnostics for the G-Cache control loop.

:class:`GCacheDiagnostics` consumes an event stream (typically a
:class:`~repro.obs.sinks.RingBufferSink` filled during a traced run) and
reconstructs the *transient* behaviour the end-of-run counters average
away:

* **per-set switch duty cycle** — fraction of the run each L1 set spent
  with its bypass switch on, rebuilt from ``switch.on`` /
  ``switch.shutdown`` / ``switch.off`` events;
* **time-to-first-detection** — cycle of the first contention hint
  (victim bit already set) per L1, i.e. how long the detector warms up;
* **bypass-reason breakdown** — why each bypassed fill bypassed
  (all-hot under the normal vs the victim threshold);
* **adaptive-M trajectory** — every ``gcache.m_adapt`` step.

The analyzer is pure post-processing: it never touches the simulator and
works on any event iterable (ring buffer, parsed JSONL, hand-built lists
in tests).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import (
    EV_BYPASS_DECISION,
    EV_M_ADAPT,
    EV_SWITCH_OFF,
    EV_SWITCH_ON,
    EV_SWITCH_SHUTDOWN,
    EV_VICTIM_SET,
    Event,
)
from repro.stats.report import Table

__all__ = ["GCacheDiagnostics"]


class GCacheDiagnostics:
    """Analyzes a traced run's G-Cache convergence behaviour.

    Args:
        events: Event stream (any iterable of :class:`Event`).
        end_cycle: Cycle at which the run ended; switches still on are
            credited with on-time up to this point.  Defaults to the
            largest event cycle seen.
    """

    def __init__(self, events: Iterable[Event], end_cycle: Optional[int] = None) -> None:
        events = sorted(events, key=lambda e: (e.cycle, e.seq))
        self.num_events = len(events)
        self.end_cycle = end_cycle if end_cycle is not None else (
            events[-1].cycle if events else 0
        )

        # (l1, set) -> accumulated on-cycles; and currently-on start cycles.
        on_time: Dict[Tuple[str, int], int] = defaultdict(int)
        on_since: Dict[Tuple[str, int], int] = {}
        activations: Counter = Counter()
        first_detection: Dict[str, int] = {}
        first_activation: Dict[str, int] = {}
        reasons: Counter = Counter()
        m_steps: List[Tuple[int, int]] = []
        shutdowns = 0

        for ev in events:
            if ev.kind == EV_SWITCH_ON:
                key = (ev.src, ev.args.get("set", 0))
                if key not in on_since:
                    on_since[key] = ev.cycle
                activations[key] += 1
                first_activation.setdefault(ev.src, ev.cycle)
            elif ev.kind == EV_SWITCH_OFF:
                key = (ev.src, ev.args.get("set", 0))
                start = on_since.pop(key, None)
                if start is not None:
                    on_time[key] += ev.cycle - start
            elif ev.kind == EV_SWITCH_SHUTDOWN:
                shutdowns += 1
                for key in [k for k in on_since if k[0] == ev.src]:
                    on_time[key] += ev.cycle - on_since.pop(key)
            elif ev.kind == EV_VICTIM_SET:
                if ev.args.get("hint"):
                    first_detection.setdefault(ev.args.get("l1", ev.src), ev.cycle)
            elif ev.kind == EV_BYPASS_DECISION:
                reasons[ev.args.get("reason", "unknown")] += 1
            elif ev.kind == EV_M_ADAPT:
                m_steps.append((ev.cycle, ev.args.get("m", 0)))

        # Close out switches still on at end of run.
        for key, start in on_since.items():
            on_time[key] += max(0, self.end_cycle - start)

        self._on_time = dict(on_time)
        self._activations = activations
        self.shutdowns = shutdowns
        self.first_detection = first_detection
        self.first_activation = first_activation
        self.bypass_reasons = dict(reasons)
        self.m_trajectory = m_steps

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def duty_cycles(self) -> Dict[Tuple[str, int], float]:
        """Per-(L1, set) switch duty cycle over the observed run."""
        if not self.end_cycle:
            return {key: 0.0 for key in self._on_time}
        return {
            key: min(1.0, cycles / self.end_cycle)
            for key, cycles in self._on_time.items()
        }

    def set_duty_cycles(self) -> Dict[int, float]:
        """Duty cycle per set index, averaged across L1 instances."""
        per_set: Dict[int, List[float]] = defaultdict(list)
        for (_, set_index), duty in self.duty_cycles().items():
            per_set[set_index].append(duty)
        return {s: sum(v) / len(v) for s, v in sorted(per_set.items())}

    @property
    def time_to_first_detection(self) -> Optional[int]:
        """Cycle of the earliest contention hint across all L1s."""
        return min(self.first_detection.values()) if self.first_detection else None

    @property
    def total_bypasses(self) -> int:
        return sum(self.bypass_reasons.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, top_sets: int = 10) -> str:
        """Multi-table convergence report for terminal output."""
        lines: List[str] = []

        summary = Table(["metric", "value"], title="G-Cache convergence")
        summary.row(["events analyzed", f"{self.num_events:,}"])
        summary.row(["run length", f"{self.end_cycle:,} cycles"])
        ttfd = self.time_to_first_detection
        summary.row(
            ["time to first detection",
             f"cycle {ttfd:,}" if ttfd is not None else "never"]
        )
        summary.row(["L1s that detected contention", str(len(self.first_detection))])
        summary.row(["switch activations", str(sum(self._activations.values()))])
        summary.row(["periodic shutdowns", str(self.shutdowns)])
        summary.row(["bypassed fills (traced)", str(self.total_bypasses)])
        lines.append(summary.render())

        if self.bypass_reasons:
            t = Table(["bypass reason", "count", "share"], title="Bypass reasons")
            for reason, count in sorted(
                self.bypass_reasons.items(), key=lambda kv: -kv[1]
            ):
                t.row([reason, str(count), f"{count / self.total_bypasses:.1%}"])
            lines.append("")
            lines.append(t.render())

        set_duty = self.set_duty_cycles()
        if set_duty:
            t = Table(
                ["set", "duty cycle", "activations"],
                title=f"Per-set switch duty cycle (top {top_sets})",
            )
            per_set_act: Counter = Counter()
            for (_, set_index), n in self._activations.items():
                per_set_act[set_index] += n
            ranked = sorted(set_duty.items(), key=lambda kv: -kv[1])[:top_sets]
            for set_index, duty in ranked:
                t.row([str(set_index), f"{duty:.1%}", str(per_set_act[set_index])])
            lines.append("")
            lines.append(t.render())

        if self.m_trajectory:
            traj = " -> ".join(str(m) for _, m in self.m_trajectory[:16])
            if len(self.m_trajectory) > 16:
                traj += " ..."
            lines.append("")
            lines.append(f"adaptive-M trajectory: {traj}")

        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GCacheDiagnostics {self.num_events} events, "
            f"{len(self._on_time)} switched sets>"
        )
