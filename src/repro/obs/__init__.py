"""repro.obs — simulation tracing and metrics.

The observability subsystem has three legs:

* **events** (:mod:`repro.obs.events`): a typed event bus threaded
  through the caches, G-Cache control loop, MSHRs, NoC, DRAM and SIMT
  cores.  Tracing is strictly opt-in: components carry ``obs = None``
  until :func:`wire` installs a bus, so a normal run pays one attribute
  check per emission site and nothing else.
* **sinks** (:mod:`repro.obs.sinks`): where events go — a bounded
  in-memory ring, a JSONL stream, or a Perfetto/Chrome ``trace_event``
  JSON file.
* **metrics** (:mod:`repro.obs.metrics`): a hierarchical registry of
  namespaced counters/gauges/histograms, snapshotted into
  ``RunResult.extras["metrics"]`` at the end of every run and surfaced
  through reports and campaign manifests.

Typical usage::

    from repro.obs import Observability
    from repro.sim.simulator import GPU

    obs = Observability.to_perfetto("trace.json")
    gpu = GPU(config, design, obs=obs)
    result = gpu.run(trace)
    obs.close()                      # writes trace.json

:class:`~repro.obs.diagnostics.GCacheDiagnostics` turns a recorded
stream into a convergence report (``python -m repro profile``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.diagnostics import GCacheDiagnostics
from repro.obs.events import EVENT_KINDS, Event, EventBus
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.obs.sinks import (
    CallbackSink,
    JSONLSink,
    PerfettoSink,
    RingBufferSink,
    validate_trace_event_json,
)

__all__ = [
    "Event",
    "EventBus",
    "EVENT_KINDS",
    "RingBufferSink",
    "JSONLSink",
    "PerfettoSink",
    "CallbackSink",
    "validate_trace_event_json",
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "collect_run_metrics",
    "GCacheDiagnostics",
    "Observability",
    "wire",
]


class Observability:
    """One run's observability context: an event bus plus a metrics registry.

    Args:
        sinks: Event sinks; an empty list still records bus counters.
        kinds: Optional whitelist of event kinds (see ``EVENT_KINDS``).
        metrics: Metrics registry; a fresh one is created by default.
    """

    def __init__(
        self,
        sinks: Optional[Iterable] = None,
        kinds: Optional[Iterable[str]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.bus = EventBus(sinks, kinds=kinds)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Constructors for the common sink setups
    # ------------------------------------------------------------------
    @classmethod
    def in_memory(cls, capacity: int = 1_000_000, **kw) -> "Observability":
        """Ring-buffer tracing (tests, diagnostics)."""
        return cls(sinks=[RingBufferSink(capacity)], **kw)

    @classmethod
    def to_perfetto(cls, path: Union[str, Path], **kw) -> "Observability":
        """Trace to a Perfetto-loadable Chrome JSON file."""
        return cls(sinks=[PerfettoSink(path)], **kw)

    @classmethod
    def to_jsonl(cls, path: Union[str, Path], **kw) -> "Observability":
        """Trace to a JSONL stream with bounded buffering."""
        return cls(sinks=[JSONLSink(path)], **kw)

    # ------------------------------------------------------------------
    def ring(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if one is attached."""
        for sink in self.bus.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def diagnostics(self, end_cycle: Optional[int] = None) -> GCacheDiagnostics:
        """Build a convergence analyzer from the attached ring buffer."""
        ring = self.ring()
        if ring is None:
            raise ValueError(
                "diagnostics need a RingBufferSink on the bus "
                "(use Observability.in_memory())"
            )
        return GCacheDiagnostics(ring.events(), end_cycle=end_cycle)

    def close(self) -> None:
        self.bus.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Observability bus={self.bus!r}>"


def wire(gpu, obs: Observability) -> None:
    """Install ``obs``'s event bus on every instrumented component of a GPU.

    Components default to ``obs = None`` (tracing disabled); this sets
    the attribute on the memory system, every cache and its management
    policy, the NoC, the memory controllers and the SIMT cores.  Called
    by ``GPU.__init__`` when constructed with ``obs=``; callers wiring a
    bare :class:`~repro.sim.memory_system.MemorySystem` can pass any
    object with ``memory``/``cores`` attributes.
    """
    bus = obs.bus
    memory = gpu.memory
    memory.obs = bus
    for cache in memory.l1s:
        cache.obs = bus
        cache.mgmt.obs = bus
    for bank in memory.l2_banks:
        bank.obs = bus
    memory.noc.obs = bus
    for mc in memory.mcs:
        mc.obs = bus
    for core in getattr(gpu, "cores", []):
        core.obs = bus
