"""Event sinks: ring buffer, JSONL stream, Perfetto/Chrome trace JSON.

Every sink implements ``write(event)`` and ``close()``; file-backed sinks
additionally expose ``flush()``.  Sinks never mutate events and may be
stacked on one bus (e.g. a ring buffer for diagnostics plus a Perfetto
file for offline inspection).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import EV_CTA_DONE, EV_CTA_LAUNCH, Event

__all__ = ["RingBufferSink", "JSONLSink", "PerfettoSink", "CallbackSink"]


class CallbackSink:
    """Forwards every event to a callable; the bridge primitive.

    Lets a bus feed anything with a ``dict``-shaped inbox — e.g. a
    :class:`repro.service.events.JobEventBroker`, whose subscribers then
    see simulated-hardware events interleaved with service progress::

        bus.attach(CallbackSink(broker.publish, wrap="obs_event"))

    Callback exceptions are counted and swallowed: a broken consumer
    must not take the simulation down with it.
    """

    def __init__(self, callback, wrap: Optional[str] = None) -> None:
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {type(callback).__name__}")
        self.callback = callback
        self.wrap = wrap
        self.events_written = 0
        self.errors = 0

    def write(self, event: Event) -> None:
        payload = event.as_dict()
        if self.wrap is not None:
            payload = {"event": self.wrap, **payload}
        try:
            self.callback(payload)
            self.events_written += 1
        except Exception:  # noqa: BLE001 - consumer isolation boundary
            self.errors += 1

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    The workhorse for tests and for :class:`~repro.obs.diagnostics.
    GCacheDiagnostics`; with the default capacity it holds every event a
    small run emits, while bounding memory on long runs.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.total_written = 0

    def write(self, event: Event) -> None:
        self._buffer.append(event)
        self.total_written += 1

    def events(self) -> List[Event]:
        """Buffered events in emission order."""
        return list(self._buffer)

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(Counter(e.kind for e in self._buffer))

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (written minus retained)."""
        return self.total_written - len(self._buffer)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLSink:
    """Streams events to a file, one JSON object per line.

    Writes are buffered and flushed every ``buffer_size`` events (bounded
    buffering: the buffer never holds more than ``buffer_size`` encoded
    lines), so a crashed run still leaves a mostly-complete trace.
    """

    def __init__(self, path: Union[str, Path], buffer_size: int = 4096) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.path = Path(path)
        self.buffer_size = buffer_size
        self._buffer: List[str] = []
        self._fh = open(self.path, "w")
        self.events_written = 0
        self.flushes = 0

    def write(self, event: Event) -> None:
        self._buffer.append(json.dumps(event.as_dict(), sort_keys=True))
        self.events_written += 1
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self.flushes += 1
        self._fh.flush()

    def close(self) -> None:
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()


#: Event kinds rendered as Perfetto *counter* tracks would go here; the
#: exporter keeps everything as instant events for simplicity, but a few
#: kinds get dedicated duration slices.
_SLICE_BEGIN = {EV_CTA_LAUNCH: "CTA"}
_SLICE_END = {EV_CTA_DONE: "CTA"}


class PerfettoSink:
    """Exports a Chrome ``trace_event`` JSON file loadable in Perfetto.

    The mapping:

    * every event becomes an *instant* event (``"ph": "i"``) on a track
      named after its source component (``pid`` = component family,
      ``tid`` = instance), with the simulated cycle as the timestamp
      (1 cycle = 1 µs, so Perfetto's time axis reads in cycles);
    * CTA launch/complete pairs additionally become async slices so core
      occupancy is visible at a glance;
    * the event payload lands in ``args`` for the detail pane.

    Events are accumulated in memory and written on :meth:`close` —
    the Chrome JSON array format is not streamable.
    """

    def __init__(self, path: Union[str, Path], max_events: int = 2_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.path = Path(path)
        self.max_events = max_events
        self._trace_events: List[Dict] = []
        self.events_written = 0
        self.events_dropped = 0
        self._pids: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def _track(self, src: str) -> tuple:
        """(pid, tid) for a component name like ``L1[3]`` or ``noc``."""
        family, _, rest = src.partition("[")
        tid = int(rest[:-1]) if rest.endswith("]") and rest[:-1].isdigit() else 0
        pid = self._pids.setdefault(family, len(self._pids) + 1)
        return pid, tid

    def write(self, event: Event) -> None:
        if len(self._trace_events) >= self.max_events:
            self.events_dropped += 1
            return
        pid, tid = self._track(event.src)
        record: Dict = {
            "name": event.kind,
            "cat": event.kind.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": event.cycle,
            "pid": pid,
            "tid": tid,
            "args": dict(event.args),
        }
        if event.kind in _SLICE_BEGIN or event.kind in _SLICE_END:
            # Async begin/end pair keyed by (core, cta slot) so Perfetto
            # draws CTA residency as a slice.
            record = dict(record)
            record["ph"] = "b" if event.kind in _SLICE_BEGIN else "e"
            record["name"] = _SLICE_BEGIN.get(event.kind) or _SLICE_END[event.kind]
            record["id"] = f"{event.src}:{event.args.get('slot', 0)}"
            record.pop("s", None)
        self._trace_events.append(record)
        self.events_written += 1

    def flush(self) -> None:
        pass  # array format: only writable as a whole on close

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": family or "sim"},
            }
            for family, pid in sorted(self._pids.items(), key=lambda kv: kv[1])
        ]
        blob = {
            "traceEvents": metadata + self._trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "events": self.events_written,
                "dropped": self.events_dropped,
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as fh:
            json.dump(blob, fh)
            fh.write("\n")


def validate_trace_event_json(blob: Dict) -> List[str]:
    """Validate a Chrome ``trace_event`` JSON object; returns problems.

    Checks the subset of the schema Perfetto actually requires: a
    ``traceEvents`` array whose entries carry ``name``/``ph``/``pid``/
    ``tid`` and, for non-metadata phases, a numeric ``ts``.  Used by the
    CI trace-smoke job and the sink tests.
    """
    problems: List[str] = []
    events = blob.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i}: non-numeric ts for ph={ph!r}")
        if ph in ("b", "e") and "id" not in ev:
            problems.append(f"event {i}: async event without id")
    return problems


__all__.append("validate_trace_event_json")
