"""SIMT core model: warp issue, CTA residency, barriers.

Each core issues at most one warp-instruction per cycle from a ready warp
chosen by its warp scheduler.  Memory instructions are split into line
transactions by the coalescer and handed to the shared
:class:`~repro.sim.memory_system.MemorySystem`; the warp then waits for
the slowest transaction.  ALU/scratchpad groups occupy the issue port for
their instruction count, which is how multithreading hides memory latency
in the model: while one warp waits, others burn issue slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.coalescer import Coalescer
from repro.gpu.schedulers import LRRScheduler, make_scheduler
from repro.gpu.warp import Warp
from repro.obs.events import EV_CTA_DONE, EV_CTA_LAUNCH
from repro.sim.config import GPUConfig
from repro.sim.memory_system import MemorySystem
from repro.trace.trace import (
    CTATrace,
    OP_ALU,
    OP_ATOM,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
)

__all__ = ["SIMTCore"]

#: Core is idle with nothing scheduled.
IDLE = None


class SIMTCore:
    """One SIMT core and its resident CTAs."""

    def __init__(self, core_id: int, config: GPUConfig, memory: MemorySystem) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.scheduler = make_scheduler(config.warp_scheduler)
        if hasattr(self.scheduler, "bind_stats"):
            # Feedback-driven schedulers (CCWS-style throttling) observe
            # this core's L1 statistics.
            self.scheduler.bind_stats(memory.l1s[core_id].stats)
        self.coalescer = Coalescer(config.line_size, config.simt_width)
        # Issue-loop constants, hoisted out of the per-step dispatch.
        self._alu_latency = config.alu_latency
        self._smem_latency = config.smem_latency
        self._coal_shift = self.coalescer._shift
        self._mem_load = memory.load
        self._mem_store = memory.store
        self._mem_atomic = memory.atomic
        # The default LRR scheduler's pick loop is inlined in step();
        # exact subclasses only, so custom schedulers keep their hooks.
        self._lrr = self.scheduler if type(self.scheduler) is LRRScheduler else None

        self.warps: List[Warp] = []
        self._cta_remaining: Dict[int, int] = {}
        self._cta_waiting: Dict[int, int] = {}
        self._cta_scratchpad: Dict[int, int] = {}
        self._next_slot = 0
        self.scratchpad_used = 0

        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.instructions = 0
        self.finish_time = 0
        self._age_counter = 0
        #: Currently scheduled wake time (engine bookkeeping); None = idle.
        self.wake: Optional[int] = 0
        #: Set by step()/launch() when a CTA finished this step.
        self.completed_cta = False

    # ------------------------------------------------------------------
    # CTA residency
    # ------------------------------------------------------------------
    @property
    def resident_ctas(self) -> int:
        return len(self._cta_remaining)

    @property
    def live_warps(self) -> int:
        return sum(1 for w in self.warps if not w.done)

    def can_accept(self, cta: CTATrace, scratchpad: int) -> bool:
        """Resource check: CTA slots, warp slots, scratchpad capacity."""
        cfg = self.config
        return (
            self.resident_ctas < cfg.max_ctas_per_core
            and self.live_warps + cta.num_warps <= cfg.max_warps_per_core
            and self.scratchpad_used + scratchpad <= cfg.scratchpad_bytes
        )

    def launch(self, cta: CTATrace, scratchpad: int, now: int) -> None:
        """Place a CTA onto this core; its warps become ready next cycle."""
        if not self.can_accept(cta, scratchpad):
            raise RuntimeError(f"core {self.core_id} cannot accept CTA (resource check)")
        slot = self._next_slot
        self._next_slot += 1
        live = 0
        for program in cta.warps:
            warp = Warp(len(self.warps), slot, program, self._age_counter)
            self._age_counter += 1
            warp.ready_time = now + 1
            self.warps.append(warp)
            self.scheduler.on_warp_added(warp)
            if not warp.done:
                live += 1
        self._cta_remaining[slot] = live
        self._cta_waiting[slot] = 0
        self._cta_scratchpad[slot] = scratchpad
        self.scratchpad_used += scratchpad
        if self.obs is not None:
            self.obs.emit(
                EV_CTA_LAUNCH, now, f"core[{self.core_id}]",
                slot=slot, warps=cta.num_warps,
            )
        if live == 0:
            self._complete_cta(slot, now)

    def _complete_cta(self, slot: int, now: int) -> None:
        self.scratchpad_used -= self._cta_scratchpad.pop(slot)
        del self._cta_remaining[slot]
        del self._cta_waiting[slot]
        # Prune retired warps so scheduler scans stay short.
        self.warps = [w for w in self.warps if not w.done]
        self.completed_cta = True
        if self.obs is not None:
            self.obs.emit(EV_CTA_DONE, now, f"core[{self.core_id}]", slot=slot)

    # ------------------------------------------------------------------
    # Barrier handling
    # ------------------------------------------------------------------
    def _alive_in_cta(self, slot: int) -> int:
        return self._cta_remaining.get(slot, 0)

    def _arrive_barrier(self, warp: Warp, now: int) -> None:
        slot = warp.cta_slot
        warp.at_barrier = True
        self._cta_waiting[slot] += 1
        self._maybe_release_barrier(slot, now)

    def _maybe_release_barrier(self, slot: int, now: int) -> None:
        if self._cta_waiting.get(slot, 0) >= self._alive_in_cta(slot) > 0:
            for w in self.warps:
                if w.cta_slot == slot and w.at_barrier:
                    w.at_barrier = False
                    w.ready_time = now + 1
            self._cta_waiting[slot] = 0

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def step(self, now: int) -> Optional[int]:
        """Issue at most one warp's next instruction (or instruction group).

        Returns the next time this core needs attention, or ``None`` when
        it is drained (no live warps).
        """
        self.completed_cta = False
        lrr = self._lrr
        if lrr is not None:
            # Inlined LRRScheduler.pick (identical scan order).
            warps = self.warps
            warp = None
            n = len(warps)
            if n:
                start = lrr._next % n
                for off in range(n):
                    idx = start + off
                    if idx >= n:
                        idx -= n
                    w = warps[idx]
                    if not w.done and not w.at_barrier and w.ready_time <= now:
                        lrr._next = (idx + 1) % n
                        warp = w
                        break
        else:
            warp = self.scheduler.pick(self.warps, now)
        if warp is None:
            nxt = -1
            for w in self.warps:
                if not w.done and not w.at_barrier:
                    rt = w.ready_time
                    if nxt < 0 or rt < nxt:
                        nxt = rt
            if nxt >= 0:
                # Guard against scheduler anomalies: never stall in place.
                return nxt if nxt > now else now + 1
            return IDLE

        op, arg = warp.program[warp.pc]
        next_issue = now + 1

        if op == OP_ALU:
            count = arg
            warp.ready_time = now + count + self._alu_latency
            warp.issued += count
            self.instructions += count
            next_issue = now + count
        elif op == OP_SMEM:
            count = arg
            warp.ready_time = now + count + self._smem_latency
            warp.issued += count
            self.instructions += count
            next_issue = now + count
        elif op == OP_LOAD:
            # Inlined coalesce (lane counts are validated when traces are
            # built): dict.fromkeys is an order-preserving C-speed dedup.
            shift = self._coal_shift
            lines = list(dict.fromkeys(a >> shift for a in arg))
            co = self.coalescer
            co.warp_accesses += 1
            co.transactions += len(lines)
            load = self._mem_load
            core_id = self.core_id
            completion = now + 1
            for line_addr in lines:
                done = load(core_id, line_addr, now)
                if done > completion:
                    completion = done
            warp.ready_time = completion
            warp.issued += 1
            self.instructions += 1
        elif op == OP_STORE:
            shift = self._coal_shift
            lines = list(dict.fromkeys(a >> shift for a in arg))
            co = self.coalescer
            co.warp_accesses += 1
            co.transactions += len(lines)
            store = self._mem_store
            core_id = self.core_id
            for line_addr in lines:
                store(core_id, line_addr, now)
            # Stores retire into write buffers: the warp only waits for the
            # transactions to leave the core's memory port.
            warp.ready_time = now + len(lines)
            warp.issued += 1
            self.instructions += 1
        elif op == OP_ATOM:
            shift = self._coal_shift
            lines = list(dict.fromkeys(a >> shift for a in arg))
            co = self.coalescer
            co.warp_accesses += 1
            co.transactions += len(lines)
            atomic = self._mem_atomic
            core_id = self.core_id
            for line_addr in lines:
                atomic(core_id, line_addr, now)
            warp.ready_time = now + len(lines)
            warp.issued += 1
            self.instructions += 1
        elif op == OP_BAR:
            warp.issued += 1
            self.instructions += 1
            warp.ready_time = now + 1
            if warp.pc + 1 < len(warp.program):
                self._arrive_barrier(warp, now)
        else:  # pragma: no cover - traces are validated upstream
            raise ValueError(f"unknown opcode {op}")

        warp.pc += 1
        if warp.pc >= len(warp.program):
            warp.done = True
            if warp.ready_time > self.finish_time:
                self.finish_time = warp.ready_time
            slot = warp.cta_slot
            self._cta_remaining[slot] -= 1
            if self._cta_remaining[slot] == 0:
                self._complete_cta(slot, now)
            else:
                # A finished warp can be the last arrival its siblings
                # were waiting on.
                self._maybe_release_barrier(slot, now)

        if now > self.finish_time:
            self.finish_time = now
        # Fused wakeup: the issue port frees at next_issue, but issuing
        # also needs a ready warp.  Returning max(next_issue, earliest
        # warp-ready time) skips the idle wakeup the engine would
        # otherwise schedule just to discover nothing can issue — in
        # memory-bound phases those no-op rounds are ~40% of all events.
        # Warp ready times only change inside this core's own step, so
        # nothing can become ready earlier in between.  The scan bails as
        # soon as one warp is ready by next_issue (the exact minimum is
        # irrelevant below the port-free time).
        mn = -1
        for w in self.warps:
            if not w.done and not w.at_barrier:
                rt = w.ready_time
                if rt <= next_issue:
                    return next_issue
                if mn < 0 or rt < mn:
                    mn = rt
        if mn < 0:
            # Every remaining warp is done (or parked forever, which the
            # barrier-release invariant excludes): nothing left to issue.
            return IDLE
        # Fusing skips exactly one engine round: the wake at next_issue
        # whose pick() would have found nothing ready.  Stateful
        # schedulers (GTO's greedy slot, two-level's active set, the
        # throttle monitor) mutate their state even on that empty pick —
        # GTO in particular drops its greedy warp when it stalls — so
        # replay the call they would have seen.  Warp state cannot change
        # between now and next_issue (ready times only move inside this
        # core's own step, and mid-kernel CTA launches only target cores
        # whose slot just freed), so the replayed pick is exact: it
        # returns None here by the same scan that chose `mn` above.
        if lrr is None:
            self.scheduler.pick(self.warps, next_issue)
        return mn

    def drained(self) -> bool:
        """No live warps remain on this core."""
        return self.live_warps == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SIMTCore {self.core_id}: {self.live_warps} warps, "
            f"{self.resident_ctas} CTAs, {self.instructions} instrs>"
        )
