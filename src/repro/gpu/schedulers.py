"""Warp schedulers (paper Section 2.2).

The baseline configuration uses loose round-robin (LRR, Table 2).
Greedy-then-oldest (GTO) and two-level scheduling are provided for the
scheduler-interaction ablation: the paper argues G-Cache is orthogonal to
cache-aware scheduling and "can also cooperate with the scheduler".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.gpu.warp import Warp

__all__ = [
    "WarpScheduler",
    "LRRScheduler",
    "GTOScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
]


class WarpScheduler(ABC):
    """Picks the warp to issue from among the ready ones."""

    name = "base"

    @abstractmethod
    def pick(self, warps: List[Warp], now: int) -> Optional[Warp]:
        """Return a ready warp, or ``None`` if nothing can issue."""

    def on_warp_added(self, warp: Warp) -> None:
        """Notification that a new warp joined the pool."""


class LRRScheduler(WarpScheduler):
    """Loose round-robin: rotate through warp slots, skipping stalls."""

    name = "lrr"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, warps: List[Warp], now: int) -> Optional[Warp]:
        n = len(warps)
        if n == 0:
            return None
        # Hot loop: the readiness test is inlined (attribute reads beat a
        # method call per candidate) and the modulo is replaced by one
        # wrap-around subtract.  Scan order is identical to the classic
        # `(next + off) % n` formulation.
        start = self._next % n
        for off in range(n):
            idx = start + off
            if idx >= n:
                idx -= n
            warp = warps[idx]
            if not warp.done and not warp.at_barrier and warp.ready_time <= now:
                self._next = (idx + 1) % n
                return warp
        return None


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest: stick with one warp until it stalls, then the
    oldest ready warp.

    GTO concentrates intra-warp locality, which typically reduces L1
    contention relative to LRR [Rogers et al., MICRO '12].
    """

    name = "gto"

    def __init__(self) -> None:
        self._greedy: Optional[Warp] = None

    def pick(self, warps: List[Warp], now: int) -> Optional[Warp]:
        greedy = self._greedy
        if (
            greedy is not None
            and not greedy.done
            and not greedy.at_barrier
            and greedy.ready_time <= now
        ):
            return greedy
        oldest: Optional[Warp] = None
        for warp in warps:
            if (
                not warp.done
                and not warp.at_barrier
                and warp.ready_time <= now
                and (oldest is None or warp.age < oldest.age)
            ):
                oldest = warp
        self._greedy = oldest
        return oldest


class TwoLevelScheduler(WarpScheduler):
    """Two-level scheduling [Narasiman et al., MICRO-44 '11].

    Only a small *active* subset of warps is eligible; a warp that stalls
    on memory is swapped out for a pending one.  This throttles the number
    of warps sharing the L1 at any instant.
    """

    name = "two-level"

    def __init__(self, active_size: int = 8) -> None:
        if active_size < 1:
            raise ValueError(f"active set must hold >= 1 warp, got {active_size}")
        self.active_size = active_size
        self._active: List[Warp] = []
        self._rr = LRRScheduler()

    def _refresh(self, warps: List[Warp], now: int) -> None:
        # Drop finished warps and those stalled on long-latency events.
        self._active = [w for w in self._active if not w.done]
        stalled = [w for w in self._active if not w.ready(now)]
        if len(self._active) - len(stalled) > 0 and len(self._active) >= self.active_size:
            return
        active_ids = {id(w) for w in self._active}
        for warp in warps:
            if len(self._active) >= self.active_size:
                break
            if warp.done or id(warp) in active_ids:
                continue
            if warp.ready(now):
                self._active.append(warp)
                active_ids.add(id(warp))

    def pick(self, warps: List[Warp], now: int) -> Optional[Warp]:
        self._refresh(warps, now)
        choice = self._rr.pick(self._active, now)
        if choice is None:
            # Fall back to the full pool so forward progress never depends
            # on the active-set heuristic.
            choice = self._rr.pick(warps, now)
        return choice


def make_scheduler(name: str, **kwargs) -> WarpScheduler:
    """Build a warp scheduler by name."""
    # Imported lazily: the throttle scheduler depends on this module.
    from repro.gpu.throttle import ThrottleScheduler

    registry = {
        "lrr": LRRScheduler,
        "gto": GTOScheduler,
        "two-level": TwoLevelScheduler,
        "throttle": ThrottleScheduler,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
