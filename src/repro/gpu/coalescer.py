"""Memory-access coalescing unit (paper Section 2.2).

Before a warp's per-lane global accesses reach the L1, the coalescing
unit groups them into the minimal set of aligned line-sized transactions
(Fermi coalesces at 128 B granularity, matching the cache line).  Fully
coalesced warps — all 32 lanes in one line — produce a single transaction,
which is why streaming GPU kernels exert so little pressure per access and
why spatial locality is "largely captured by the coalescing unit" before
the cache ever sees the request.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["Coalescer"]


class Coalescer:
    """Groups per-lane byte addresses into unique line transactions.

    Args:
        line_size: Coalescing granularity in bytes (128, the L1 line).
        max_lanes: SIMT width (32); inputs are validated against it.
    """

    def __init__(self, line_size: int = 128, max_lanes: int = 32) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a positive power of two, got {line_size}")
        self.line_size = line_size
        self.max_lanes = max_lanes
        self._shift = line_size.bit_length() - 1
        self.warp_accesses = 0
        self.transactions = 0

    def coalesce(self, lane_addrs: Sequence[int]) -> List[int]:
        """Return the unique line addresses touched, in first-lane order.

        Order preservation matters: it determines the order transactions
        enter the L1 pipeline, which downstream contention models observe.
        """
        n = len(lane_addrs)
        if n > self.max_lanes:
            raise ValueError(
                f"warp presented {n} lanes, max is {self.max_lanes}"
            )
        if not n:
            self.warp_accesses += 1
            return []
        shift = self._shift
        lines: List[int] = [a >> shift for a in lane_addrs]
        if lines.count(lines[0]) == n:
            # Fully coalesced warp (the common case in regular kernels):
            # all lanes hit one line, no dedup structure needed.
            lines = lines[:1]
        else:
            # dict.fromkeys is an order-preserving C-speed dedup.
            lines = list(dict.fromkeys(lines))
        self.warp_accesses += 1
        self.transactions += len(lines)
        return lines

    @property
    def average_transactions(self) -> float:
        """Mean transactions per warp access (1.0 = perfectly coalesced)."""
        return self.transactions / self.warp_accesses if self.warp_accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Coalescer {self.line_size}B, avg {self.average_transactions:.2f} txn/warp>"
