"""Cache-conscious warp throttling (CCWS-style scheduler).

The paper compares against cache-conscious wavefront scheduling (CCWS,
Rogers et al. MICRO '12), which *reduces multithreading* when warps lose
locality, and argues G-Cache is complementary: "bypass can also cooperate
with the scheduler to further improve cache efficiency".

:class:`ThrottleScheduler` is a lightweight CCWS stand-in: it monitors
the core's recent L1 hit rate (the observable consequence of lost
locality) and adapts the number of schedulable warps — shrinking the
active set when the cache is thrashing, growing it back when hits
recover.  It binds to the core's L1 statistics via :meth:`bind_stats`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gpu.schedulers import LRRScheduler, WarpScheduler
from repro.gpu.warp import Warp
from repro.stats.counters import CacheStats

__all__ = ["ThrottleScheduler"]


class ThrottleScheduler(WarpScheduler):
    """Adaptive warp throttling driven by L1 hit-rate feedback.

    Args:
        min_active: Floor on schedulable warps (progress guarantee).
        max_active: Ceiling (the hardware warp count).
        epoch: Issue slots between adaptation decisions.
        low_water: Hit rate below which the active set shrinks.
        high_water: Hit rate above which it grows.
    """

    name = "throttle"

    def __init__(
        self,
        min_active: int = 6,
        max_active: int = 48,
        epoch: int = 512,
        low_water: float = 0.25,
        high_water: float = 0.45,
    ) -> None:
        if not 1 <= min_active <= max_active:
            raise ValueError(
                f"need 1 <= min_active <= max_active, got {min_active}, {max_active}"
            )
        if not 0.0 <= low_water <= high_water <= 1.0:
            raise ValueError("need 0 <= low_water <= high_water <= 1")
        self.min_active = min_active
        self.max_active = max_active
        self.epoch = epoch
        self.low_water = low_water
        self.high_water = high_water
        self.active = max_active
        self._rr = LRRScheduler()
        self._stats: Optional[CacheStats] = None
        self._ticks = 0
        self._last_accesses = 0
        self._last_hits = 0
        self.history: List[int] = [self.active]

    def bind_stats(self, stats: CacheStats) -> None:
        """Attach the core's L1 statistics (called by the SIMT core)."""
        self._stats = stats

    def _adapt(self) -> None:
        if self._stats is None:
            return
        accesses = self._stats.accesses
        hits = self._stats.hits
        window = accesses - self._last_accesses
        if window < 32:
            return  # not enough signal this epoch
        hit_rate = (hits - self._last_hits) / window
        self._last_accesses = accesses
        self._last_hits = hits
        if hit_rate < self.low_water:
            self.active = max(self.min_active, self.active // 2)
        elif hit_rate > self.high_water:
            self.active = min(self.max_active, self.active + 4)
        self.history.append(self.active)

    def pick(self, warps: List[Warp], now: int):
        self._ticks += 1
        if self._ticks >= self.epoch:
            self._ticks = 0
            self._adapt()
        # Only the oldest `active` live warps are schedulable.
        eligible = [w for w in warps if not w.done][: self.active]
        choice = self._rr.pick(eligible, now)
        if choice is None and self.active < len(warps):
            # Never deadlock behind the throttle: if nothing in the
            # active set can issue, fall back to the full pool.
            choice = self._rr.pick(warps, now)
        return choice
