"""GPU execution model: warps, schedulers, coalescing, SIMT cores."""

from repro.gpu.coalescer import Coalescer
from repro.gpu.schedulers import (
    GTOScheduler,
    LRRScheduler,
    TwoLevelScheduler,
    WarpScheduler,
    make_scheduler,
)
from repro.gpu.warp import Warp

__all__ = [
    "Coalescer",
    "Warp",
    "WarpScheduler",
    "LRRScheduler",
    "GTOScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
]
