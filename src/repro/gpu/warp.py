"""Warp runtime state.

A :class:`Warp` is the schedulable unit: 32 SIMT threads executing one
instruction stream in lockstep (Section 2.1).  The simulator models a
warp as a program counter over its trace plus a ready time — a warp
waiting on outstanding loads (or a barrier) is not eligible for issue,
which is exactly the latency-hiding mechanism massive multithreading
relies on.
"""

from __future__ import annotations

from typing import List

from repro.trace.trace import WarpTrace

__all__ = ["Warp"]


class Warp:
    """One in-flight warp on a SIMT core.

    Attributes:
        warp_id: Core-local warp slot index.
        cta_slot: Core-local CTA slot this warp belongs to.
        program: The warp's instruction stream.
        pc: Index of the next instruction.
        ready_time: Earliest cycle the warp may issue again.
        at_barrier: Parked at a CTA barrier, waiting for siblings.
        done: Program finished.
        age: Launch order stamp (GTO's "oldest" tiebreak).
        issued: Dynamic instructions issued so far (IPC accounting).
    """

    __slots__ = (
        "warp_id",
        "cta_slot",
        "program",
        "pc",
        "ready_time",
        "at_barrier",
        "done",
        "age",
        "issued",
    )

    def __init__(self, warp_id: int, cta_slot: int, program: WarpTrace, age: int) -> None:
        self.warp_id = warp_id
        self.cta_slot = cta_slot
        self.program = program
        self.pc = 0
        self.ready_time = 0
        self.at_barrier = False
        self.done = len(program) == 0
        self.age = age
        self.issued = 0

    def ready(self, now: int) -> bool:
        """Eligible for issue at ``now``."""
        return not self.done and not self.at_barrier and self.ready_time <= now

    def blocked(self) -> bool:
        """Alive but not currently issuable (pending memory or barrier)."""
        return not self.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else ("bar" if self.at_barrier else f"rdy@{self.ready_time}")
        return f"<Warp {self.warp_id} pc={self.pc}/{len(self.program)} {state}>"
