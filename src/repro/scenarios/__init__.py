"""Declarative scenario layer: specs -> synthetic kernel traces.

A *scenario spec* is a versioned JSON document composing registered
primitives — streaming, working sets, skewed gathers, divergent
accesses, pointer chases — into an arbitrary synthetic workload.  The
layer turns "what workload property do we want to probe?" into data:

* :mod:`repro.scenarios.schema` — typed validation with actionable
  field paths, canonicalization, and content-addressed digests;
* :mod:`repro.scenarios.primitives` — the drop-in primitive registry;
* :mod:`repro.scenarios.builder` — spec -> :class:`KernelTrace`;
* :mod:`repro.scenarios.table1` — Table-1 benchmarks re-expressed as
  specs, pinned byte-identical to the hand-written generators;
* :mod:`repro.scenarios.sweep` — the generative workload space and the
  "where does G-Cache win / lose?" sweep + report.

See ``docs/scenarios.md`` for the schema reference and workflow.
"""

from repro.scenarios.builder import build_scenario
from repro.scenarios.primitives import (
    PRIMITIVES,
    Primitive,
    WarpContext,
    register_primitive,
)
from repro.scenarios.schema import (
    FORMAT_NAME,
    FORMAT_VERSION,
    Field,
    PhaseSpec,
    ScenarioSpec,
    SpecError,
    canonical_spec,
    load_spec,
    loads_spec,
    spec_digest,
    validate_spec,
)
from repro.scenarios.sweep import (
    SPACE_AXES,
    SweepResult,
    WorkloadOutcome,
    generate_space,
    run_scenario_sweep,
)
from repro.scenarios.table1 import TABLE1_BENCHMARKS, table1_spec

__all__ = [
    "SPACE_AXES",
    "SweepResult",
    "WorkloadOutcome",
    "generate_space",
    "run_scenario_sweep",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "Field",
    "PRIMITIVES",
    "PhaseSpec",
    "Primitive",
    "ScenarioSpec",
    "SpecError",
    "TABLE1_BENCHMARKS",
    "WarpContext",
    "build_scenario",
    "canonical_spec",
    "load_spec",
    "loads_spec",
    "register_primitive",
    "spec_digest",
    "table1_spec",
    "validate_spec",
]
