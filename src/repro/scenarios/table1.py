"""Table-1 benchmarks re-expressed as declarative scenario specs.

The differential anchor for the scenario layer: the four RNG-free
Table-1 generators — SD1, STL, WP and FWT — are re-expressed here as
``stream``-primitive specs that build **byte-identically** to the
hand-written generators (``dumps_trace(build_scenario(spec)) ==
dumps_trace(build_benchmark(name))``, asserted in
``tests/test_scenarios.py``).  Any drift in the builder's address
arithmetic, region allocation, scaling rule or meta handling breaks the
pin, so the declarative layer can never silently diverge from the
generators it generalizes.

The specs also serve as worked examples of the per-element body
mini-language: stencil planes via ``offset_lines`` (STL), multi-array
field sweeps (WP), and strided butterfly pairs via ``index_stride`` /
``index_offset`` (FWT).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = ["TABLE1_BENCHMARKS", "table1_spec"]

#: The RNG-free Table-1 benchmarks with exact declarative re-expressions.
TABLE1_BENCHMARKS: Tuple[str, ...] = ("SD1", "STL", "WP", "FWT")


def _meta(sensitivity: str, suite: str, description: str,
          scale: float, seed: int) -> Dict[str, Any]:
    # Key order matches BenchmarkGenerator.build()'s meta dict — JSON
    # serialization preserves insertion order, and the byte-identity pin
    # covers the serialized form.
    return {
        "sensitivity": sensitivity,
        "suite": suite,
        "description": description,
        "scale": scale,
        "seed": seed,
    }


def table1_spec(name: str, scale: float = 1.0,
                seed: int = 0) -> Dict[str, Any]:
    """The declarative spec document for one pinned Table-1 benchmark.

    Returns a raw (unvalidated) spec dict — feed it to
    :func:`~repro.scenarios.builder.build_scenario` or write it to disk
    for the CLI.  ``scale``/``seed`` are baked into both the spec fields
    and the meta block so the built trace matches
    ``build_benchmark(name, scale, seed)`` byte for byte.
    """
    scale = float(scale)
    base = {
        "format": "repro-scenario",
        "version": 1,
        "name": name,
        "scale": scale,
        "seed": seed,
        "base_ctas": 96,
        "warps_per_cta": 8,
    }

    if name == "SD1":
        # 1-D streaming diffusion: load -> 6 alu -> store, zero reuse.
        return {
            **base,
            "regions": ["in", "out"],
            "phases": [{
                "primitive": "stream",
                "params": {
                    "elements_per_warp": 30,
                    "body": [
                        {"kind": "load", "region": "in"},
                        {"kind": "alu", "count": 6},
                        {"kind": "store", "region": "out"},
                    ],
                },
            }],
            "meta": _meta("insensitive", "Rodinia",
                          "Graphic Diffusion (kernel 1)", scale, seed),
        }

    if name == "STL":
        # 7-point stencil: +-plane neighbours are fixed line offsets off
        # the centre stream (plane_lines = 1 << 16).
        plane = 1 << 16
        return {
            **base,
            "regions": ["grid", "out"],
            "phases": [{
                "primitive": "stream",
                "params": {
                    "elements_per_warp": 16,
                    "body": [
                        {"kind": "load", "region": "grid"},
                        {"kind": "load", "region": "grid",
                         "offset_lines": plane},
                        {"kind": "load", "region": "grid",
                         "offset_lines": 2 * plane},
                        {"kind": "alu", "count": 9},
                        {"kind": "store", "region": "out"},
                    ],
                },
            }],
            "meta": _meta("insensitive", "Parboil", "Stencil", scale, seed),
        }

    if name == "WP":
        # Four streamed field arrays, a long ALU block, a boundary
        # re-touch of field 0, then the output store.
        return {
            **base,
            "regions": ["field0", "field1", "field2", "field3", "out"],
            "phases": [{
                "primitive": "stream",
                "params": {
                    "elements_per_warp": 16,
                    "body": [
                        {"kind": "load", "region": "field0"},
                        {"kind": "alu", "count": 3},
                        {"kind": "load", "region": "field1"},
                        {"kind": "alu", "count": 3},
                        {"kind": "load", "region": "field2"},
                        {"kind": "alu", "count": 3},
                        {"kind": "load", "region": "field3"},
                        {"kind": "alu", "count": 3},
                        {"kind": "alu", "count": 8},
                        {"kind": "load", "region": "field0"},
                        {"kind": "alu", "count": 4},
                        {"kind": "store", "region": "out"},
                    ],
                },
            }],
            "meta": _meta("insensitive", "CUDA SDK", "Weather Prediction",
                          scale, seed),
        }

    if name == "FWT":
        # Walsh butterflies: disjoint per-warp (2i, 2i+1) pairs over a
        # 2x-length stream (index_stride 2, offsets 0 and 1).
        return {
            **base,
            "regions": ["data"],
            "phases": [{
                "primitive": "stream",
                "params": {
                    "elements_per_warp": 20,
                    "body": [
                        {"kind": "load", "region": "data",
                         "index_stride": 2, "index_offset": 0},
                        {"kind": "load", "region": "data",
                         "index_stride": 2, "index_offset": 1},
                        {"kind": "alu", "count": 6},
                        {"kind": "store", "region": "data",
                         "index_stride": 2, "index_offset": 0},
                        {"kind": "store", "region": "data",
                         "index_stride": 2, "index_offset": 1},
                    ],
                },
            }],
            "meta": _meta("insensitive", "CUDA SDK", "Fast Walsh Transform",
                          scale, seed),
        }

    raise KeyError(f"no pinned Table-1 spec for {name!r}; "
                   f"available: {', '.join(TABLE1_BENCHMARKS)}")
