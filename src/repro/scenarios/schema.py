"""Scenario spec schema: versioned, typed validation with field paths.

A scenario spec is a plain JSON/dict document describing a synthetic
workload declaratively::

    {
      "format": "repro-scenario",
      "version": 1,
      "name": "ws320-stream",
      "scale": 1.0,
      "seed": 0,
      "base_ctas": 64,
      "warps_per_cta": 8,
      "scratchpad_per_cta": 0,
      "regions": ["stream", "table"],
      "phases": [
        {"primitive": "stream", "params": {...}},
        {"primitive": "working_set", "repeat": 2, "barrier_after": true,
         "params": {...}}
      ]
    }

Validation is strict and typed: every failure raises
:class:`~repro.trace.errors.SpecError` carrying the dotted path of the
offending field (``phases[1].params.tile_lines``), so errors from a
200-workload sweep point at the exact knob.  Primitive parameters are
validated against the primitive's declared :class:`Field` table
(see :mod:`repro.scenarios.primitives`), which is also what makes new
primitives drop-in: registering one automatically extends the schema.

Canonicalization (:func:`canonical_spec`) fills every default and sorts
keys, so two specs that mean the same workload serialize to the same
bytes; :func:`spec_digest` hashes that form, giving campaign tasks
content-addressed cache keys derived from the spec itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.trace.errors import SpecError
from repro.trace.generators.base import validate_workload_params

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "Field",
    "PhaseSpec",
    "ScenarioSpec",
    "SpecError",
    "canonical_spec",
    "load_spec",
    "loads_spec",
    "spec_digest",
    "validate_spec",
]

FORMAT_NAME = "repro-scenario"
FORMAT_VERSION = 1

#: Marker for fields with no default (must be present in the document).
_REQUIRED = object()


@dataclass(frozen=True)
class Field:
    """One typed parameter slot in a primitive's (or step's) schema.

    Attributes:
        kind: ``"int"``, ``"float"``, ``"str"``, ``"bool"``, ``"choice"``,
            ``"region"`` (a name that must be declared in the spec's
            ``regions`` list) or ``"steps"`` (the stream primitive's
            per-element op list).
        default: Value used when the document omits the field;
            omit to make the field required.
        lo / hi: Inclusive numeric bounds for int/float fields.
        choices: Allowed values for ``choice`` fields.
        doc: One-line description (rendered by ``repro scenario primitives``).
    """

    kind: str
    default: Any = _REQUIRED
    lo: Optional[float] = None
    hi: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    doc: str = ""

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self, value: Any, path: str,
              regions: Sequence[str] = ()) -> Any:
        """Validate ``value``; returns it (normalized) or raises SpecError."""
        if self.kind == "int":
            return _check_int(value, path, self.lo, self.hi)
        if self.kind == "float":
            return _check_float(value, path, self.lo, self.hi)
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise SpecError(path,
                                f"expected a bool, got {type(value).__name__}")
            return value
        if self.kind == "str":
            if not isinstance(value, str):
                raise SpecError(path,
                                f"expected a string, got {type(value).__name__}")
            return value
        if self.kind == "choice":
            if value not in (self.choices or ()):
                raise SpecError(
                    path, f"expected one of {list(self.choices or ())}, "
                          f"got {value!r}")
            return value
        if self.kind == "region":
            if not isinstance(value, str):
                raise SpecError(path,
                                f"expected a region name, got {type(value).__name__}")
            if value not in regions:
                raise SpecError(
                    path, f"unknown region {value!r}; declared regions: "
                          f"{list(regions)}")
            return value
        if self.kind == "steps":
            return _check_steps(value, path, regions)
        raise SpecError(path, f"internal: unknown field kind {self.kind!r}")


def _check_int(value: Any, path: str,
               lo: Optional[float], hi: Optional[float]) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(path, f"expected an int, got {type(value).__name__}")
    if lo is not None and value < lo:
        raise SpecError(path, f"expected >= {int(lo)}, got {value}")
    if hi is not None and value > hi:
        raise SpecError(path, f"expected <= {int(hi)}, got {value}")
    return value


def _check_float(value: Any, path: str,
                 lo: Optional[float], hi: Optional[float]) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(path, f"expected a number, got {type(value).__name__}")
    value = float(value)
    if value != value:  # NaN
        raise SpecError(path, "expected a finite number, got nan")
    if lo is not None and value < lo:
        raise SpecError(path, f"expected >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise SpecError(path, f"expected <= {hi}, got {value}")
    return value


# ----------------------------------------------------------------------
# Stream-step sub-schema (the `stream` primitive's per-element op list)
# ----------------------------------------------------------------------

#: Per-kind field tables for stream body steps.  Exposed as data so the
#: property-test harness can derive Hypothesis strategies and the CLI
#: can render reference docs without hard-coding the sub-schema.
STEP_FIELDS: Dict[str, Dict[str, Field]] = {
    "load": {
        "region": Field("region", doc="region the load streams through"),
        "index_stride": Field("int", default=1, lo=0, hi=64,
                              doc="element-index multiplier"),
        "index_offset": Field("int", default=0, lo=0, hi=64,
                              doc="element-index addend"),
        "offset_lines": Field("int", default=0, lo=0, hi=1 << 22,
                              doc="fixed line offset (stencil planes)"),
    },
    "store": {
        "region": Field("region", doc="region the store streams through"),
        "index_stride": Field("int", default=1, lo=0, hi=64),
        "index_offset": Field("int", default=0, lo=0, hi=64),
        "offset_lines": Field("int", default=0, lo=0, hi=1 << 22),
    },
    "atom": {
        "region": Field("region", doc="region the atomic targets"),
        "index_stride": Field("int", default=1, lo=0, hi=64),
        "index_offset": Field("int", default=0, lo=0, hi=64),
        "offset_lines": Field("int", default=0, lo=0, hi=1 << 22),
    },
    "alu": {
        "count": Field("int", default=1, lo=1, hi=4096,
                       doc="back-to-back arithmetic instructions"),
    },
    "smem": {
        "count": Field("int", default=1, lo=1, hi=4096,
                       doc="scratchpad accesses"),
    },
    "bar": {},
}

#: Step kinds that address memory (need a region and index fields).
MEM_STEP_KINDS = ("load", "store", "atom")


def _check_steps(value: Any, path: str, regions: Sequence[str]) -> List[dict]:
    if not isinstance(value, (list, tuple)) or not value:
        raise SpecError(path, "expected a non-empty list of step objects")
    steps: List[dict] = []
    for i, raw in enumerate(value):
        spath = f"{path}[{i}]"
        if not isinstance(raw, Mapping):
            raise SpecError(spath,
                            f"expected an object, got {type(raw).__name__}")
        kind = raw.get("kind")
        if kind not in STEP_FIELDS:
            raise SpecError(f"{spath}.kind",
                            f"expected one of {list(STEP_FIELDS)}, got {kind!r}")
        fields = STEP_FIELDS[kind]
        unknown = set(raw) - set(fields) - {"kind"}
        if unknown:
            raise SpecError(
                f"{spath}.{sorted(unknown)[0]}",
                f"unknown field for a {kind!r} step; known: "
                f"{sorted(fields) or '(none)'}")
        step = {"kind": kind}
        for fname, fld in fields.items():
            if fname in raw:
                step[fname] = fld.check(raw[fname], f"{spath}.{fname}", regions)
            elif fld.required:
                raise SpecError(f"{spath}.{fname}",
                                f"required for a {kind!r} step")
            else:
                step[fname] = fld.default
        steps.append(step)
    return steps


# ----------------------------------------------------------------------
# Spec objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseSpec:
    """One validated phase: a primitive plus its (default-filled) params."""

    primitive: str
    repeat: int
    barrier_after: bool
    params: Mapping[str, Any]


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully validated scenario document (defaults filled)."""

    name: str
    scale: float
    seed: int
    base_ctas: int
    warps_per_cta: int
    scratchpad_per_cta: int
    regions: Tuple[str, ...]
    phases: Tuple[PhaseSpec, ...]
    meta: Optional[Mapping[str, Any]] = None


_NAME_MAX = 96


def validate_spec(doc: Mapping[str, Any], *,
                  scale: Optional[float] = None,
                  seed: Optional[int] = None) -> ScenarioSpec:
    """Validate a scenario document into a :class:`ScenarioSpec`.

    Args:
        doc: The parsed JSON/dict document.
        scale / seed: Optional overrides applied *before* validation —
            how sweeps and campaign tasks rescale a spec without editing
            the document.

    Raises:
        SpecError: With the dotted path of the first offending field.
    """
    if not isinstance(doc, Mapping):
        raise SpecError("$", f"expected an object, got {type(doc).__name__}")
    if doc.get("format") != FORMAT_NAME:
        raise SpecError("format",
                        f"expected {FORMAT_NAME!r}, got {doc.get('format')!r}")
    if doc.get("version") != FORMAT_VERSION:
        raise SpecError(
            "version",
            f"unsupported scenario version {doc.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})")

    known = {"format", "version", "name", "scale", "seed", "base_ctas",
             "warps_per_cta", "scratchpad_per_cta", "regions", "phases",
             "meta"}
    unknown = set(doc) - known
    if unknown:
        raise SpecError(sorted(unknown)[0],
                        f"unknown spec field; known: {sorted(known)}")

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError("name", "expected a non-empty string")
    if len(name) > _NAME_MAX:
        raise SpecError("name", f"expected <= {_NAME_MAX} characters")

    spec_scale = scale if scale is not None else doc.get("scale", 1.0)
    spec_seed = seed if seed is not None else doc.get("seed", 0)
    warps_per_cta = doc.get("warps_per_cta", 8)
    # Same typed validation (and the same SpecError) the generator
    # framework applies to TraceParams.
    validate_workload_params(spec_scale, spec_seed, warps_per_cta, path="$")
    spec_scale = float(spec_scale)

    base_ctas = _check_int(doc.get("base_ctas", 64), "base_ctas", 1, 1 << 16)
    scratchpad = _check_int(doc.get("scratchpad_per_cta", 0),
                            "scratchpad_per_cta", 0, 1 << 20)

    regions_doc = doc.get("regions")
    if not isinstance(regions_doc, (list, tuple)) or not regions_doc:
        raise SpecError("regions", "expected a non-empty list of region names")
    regions: List[str] = []
    for i, rname in enumerate(regions_doc):
        if not isinstance(rname, str) or not rname:
            raise SpecError(f"regions[{i}]", "expected a non-empty string")
        if rname in regions:
            raise SpecError(f"regions[{i}]", f"duplicate region {rname!r}")
        regions.append(rname)
    if len(regions) > 64:
        raise SpecError("regions", "expected at most 64 regions")

    meta = doc.get("meta")
    if meta is not None and not isinstance(meta, Mapping):
        raise SpecError("meta",
                        f"expected an object, got {type(meta).__name__}")

    phases_doc = doc.get("phases")
    if not isinstance(phases_doc, (list, tuple)) or not phases_doc:
        raise SpecError("phases", "expected a non-empty list of phase objects")
    if len(phases_doc) > 64:
        raise SpecError("phases", "expected at most 64 phases")

    from repro.scenarios.primitives import PRIMITIVES  # late: avoid cycle

    phases: List[PhaseSpec] = []
    for i, raw in enumerate(phases_doc):
        ppath = f"phases[{i}]"
        if not isinstance(raw, Mapping):
            raise SpecError(ppath,
                            f"expected an object, got {type(raw).__name__}")
        unknown = set(raw) - {"primitive", "repeat", "barrier_after", "params"}
        if unknown:
            raise SpecError(f"{ppath}.{sorted(unknown)[0]}",
                            "unknown phase field; known: ['primitive', "
                            "'repeat', 'barrier_after', 'params']")
        prim_name = raw.get("primitive")
        if prim_name not in PRIMITIVES:
            raise SpecError(
                f"{ppath}.primitive",
                f"unknown primitive {prim_name!r}; registered: "
                f"{sorted(PRIMITIVES)}")
        repeat = _check_int(raw.get("repeat", 1), f"{ppath}.repeat", 1, 64)
        barrier_after = raw.get("barrier_after", False)
        if not isinstance(barrier_after, bool):
            raise SpecError(f"{ppath}.barrier_after",
                            f"expected a bool, got "
                            f"{type(barrier_after).__name__}")
        params_doc = raw.get("params", {})
        if not isinstance(params_doc, Mapping):
            raise SpecError(f"{ppath}.params",
                            f"expected an object, got "
                            f"{type(params_doc).__name__}")
        params = PRIMITIVES[prim_name].validate_params(
            params_doc, f"{ppath}.params", regions)
        phases.append(PhaseSpec(primitive=prim_name, repeat=repeat,
                                barrier_after=barrier_after, params=params))

    return ScenarioSpec(
        name=name,
        scale=spec_scale,
        seed=spec_seed,
        base_ctas=base_ctas,
        warps_per_cta=warps_per_cta,
        scratchpad_per_cta=scratchpad,
        regions=tuple(regions),
        phases=tuple(phases),
        meta=dict(meta) if meta is not None else None,
    )


# ----------------------------------------------------------------------
# Canonical form and content addressing
# ----------------------------------------------------------------------
def canonical_spec(spec: Union[Mapping[str, Any], ScenarioSpec], *,
                   scale: Optional[float] = None,
                   seed: Optional[int] = None) -> Dict[str, Any]:
    """The default-filled, order-independent form of a spec.

    Two documents that validate to the same workload canonicalize to
    the same dict (and therefore the same :func:`spec_digest`),
    regardless of key order or omitted defaults.
    """
    if not isinstance(spec, ScenarioSpec):
        spec = validate_spec(spec, scale=scale, seed=seed)
    elif scale is not None or seed is not None:
        spec = validate_spec(canonical_spec(spec), scale=scale, seed=seed)
    doc: Dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": spec.name,
        "scale": spec.scale,
        "seed": spec.seed,
        "base_ctas": spec.base_ctas,
        "warps_per_cta": spec.warps_per_cta,
        "scratchpad_per_cta": spec.scratchpad_per_cta,
        "regions": list(spec.regions),
        "phases": [
            {
                "primitive": p.primitive,
                "repeat": p.repeat,
                "barrier_after": p.barrier_after,
                "params": _plain(p.params),
            }
            for p in spec.phases
        ],
    }
    if spec.meta is not None:
        doc["meta"] = _plain(spec.meta)
    return doc


def _plain(value: Any) -> Any:
    """Deep-copy to plain JSON types (dicts/lists/scalars)."""
    if isinstance(value, Mapping):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def spec_digest(spec: Union[Mapping[str, Any], ScenarioSpec], *,
                scale: Optional[float] = None,
                seed: Optional[int] = None) -> str:
    """SHA-256 of the canonical spec — the content-addressed identity
    campaign tasks key their cache entries by."""
    blob = json.dumps(canonical_spec(spec, scale=scale, seed=seed),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Document I/O
# ----------------------------------------------------------------------
def loads_spec(text: str, *, source: str = "<string>") -> ScenarioSpec:
    """Parse and validate a scenario spec from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(source, f"not valid JSON: {exc}") from None
    return validate_spec(doc)


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Read and validate a scenario spec file (JSON)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(str(path), f"cannot read spec: {exc}") from None
    return loads_spec(text, source=str(path))
