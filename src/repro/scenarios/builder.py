"""Build a :class:`~repro.trace.trace.KernelTrace` from a scenario spec.

The builder is the bridge between the declarative layer and the
generator framework: regions are allocated with the same
:class:`~repro.trace.generators.base.RegionAllocator` (declaration order
= allocation order), CTA counts scale through the same
``max(8, round(base_ctas * scale))`` rule, and per-warp randomness uses
the same crc32-based seeding discipline — extended with a per-phase
term so re-ordering phases re-seeds them.  Because the helpers match the
generators exactly, suitable specs reproduce hand-written Table-1 traces
*byte-identically* (see :mod:`repro.scenarios.table1`), which is the
differential anchor that keeps the declarative layer honest.

Invariants guaranteed for **every** valid spec (and property-tested in
``tests/test_scenario_properties.py``):

* determinism: same ``(spec, seed)`` → bit-identical trace;
* every address is line-aligned and inside its declared region
  (helpers wrap modulo the region size);
* warp/CTA structure matches the spec (CTA count, warps per CTA);
* all warps of a CTA emit the same barrier count, in the same relative
  order, so no barrier can deadlock.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Mapping, Optional, Union

from repro.trace.generators.base import RegionAllocator, TraceParams, bar
from repro.trace.trace import CTATrace, KernelTrace

from repro.scenarios.primitives import PRIMITIVES, WarpContext
from repro.scenarios.schema import (
    ScenarioSpec,
    canonical_spec,
    spec_digest,
    validate_spec,
)

__all__ = ["build_scenario"]

#: Per-phase seed stride (prime, far above any cta*131 + warp term), so
#: the same primitive in two phases draws independent streams.
_PHASE_SEED_STRIDE = 15_485_863


def build_scenario(
    spec: Union[Mapping[str, Any], ScenarioSpec],
    *,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> KernelTrace:
    """Build the synthetic kernel trace a scenario spec describes.

    Args:
        spec: A raw spec document (validated here) or an already
            validated :class:`ScenarioSpec`.
        scale / seed: Optional overrides — how sweeps rescale one spec
            without editing the document.  They participate in
            validation and in the trace's content (and therefore in
            :func:`~repro.scenarios.schema.spec_digest`).
    """
    if isinstance(spec, ScenarioSpec):
        if scale is not None or seed is not None:
            spec = validate_spec(canonical_spec(spec), scale=scale, seed=seed)
    else:
        spec = validate_spec(spec, scale=scale, seed=seed)

    params = TraceParams(scale=spec.scale, seed=spec.seed,
                         warps_per_cta=spec.warps_per_cta)
    num_ctas = params.scaled(spec.base_ctas)

    allocator = RegionAllocator()
    regions = {name: allocator.region() for name in spec.regions}

    name_seed = zlib.crc32(spec.name.encode()) & 0xFFFF
    phase_plan = [(i, PRIMITIVES[p.primitive], p) for i, p in
                  enumerate(spec.phases)]

    ctas = []
    for cta_id in range(num_ctas):
        warps = []
        for warp_id in range(spec.warps_per_cta):
            program = []
            for phase_index, prim, phase in phase_plan:
                rng = random.Random(
                    name_seed * 1_000_003
                    + spec.seed * 7919
                    + phase_index * _PHASE_SEED_STRIDE
                    + cta_id * 131
                    + warp_id
                )
                ctx = WarpContext(cta_id, warp_id, spec.warps_per_cta,
                                  num_ctas, regions, rng)
                for _ in range(phase.repeat):
                    program.extend(prim.emit(ctx, phase.params))
                    if phase.barrier_after:
                        program.append(bar())
            warps.append(program)
        ctas.append(CTATrace(warps=warps))

    if spec.meta is not None:
        meta = dict(spec.meta)
    else:
        meta = {
            "scenario": spec.name,
            "spec_digest": spec_digest(spec),
            "scale": spec.scale,
            "seed": spec.seed,
        }

    trace = KernelTrace(
        name=spec.name,
        ctas=ctas,
        scratchpad_per_cta=spec.scratchpad_per_cta,
        meta=meta,
    )
    trace.validate()
    return trace
