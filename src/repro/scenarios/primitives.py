"""Scenario primitives: the registered building blocks of workloads.

Each primitive turns a validated parameter dict into one warp's
instruction stream for one phase.  The registry follows the repo's
design-registry idiom (:mod:`repro.sim.designs`): primitives register by
name, the schema validates against their declared :class:`Field` tables,
and a new primitive is drop-in — register it and it is immediately
usable from JSON specs, the sweep generator, the CLI and (because the
trace-invariant property harness iterates the registry) automatically
held to the same invariant contract as the built-ins:

* deterministic given ``(spec, seed)``,
* every address line-aligned and inside the primitive's declared region,
* at most 32 lane addresses per memory op,
* identical op-kind structure across the warps of a CTA (barrier counts
  must line up or the CTA deadlocks).

Built-in primitives:

``stream``
    Coalesced streaming with a per-element op *body* — a mini-language
    of load/store/atom/alu/smem/bar steps with index stride/offset and
    fixed line offsets.  Expressive enough to re-express several Table-1
    generators byte-identically (see :mod:`repro.scenarios.table1`).
``working_set``
    Deterministic cyclic scan over a warp/CTA/global tile: the exact
    reuse-distance knob (tile_lines) and sharing-scope knob.
``hot_table``
    Popularity-skewed random gathers with a divergence (lanes) knob.
``divergent_stream``
    Zero-reuse streaming that touches ``lanes`` distinct lines per
    access — the uncoalesced-stream pattern.
``pointer_chase``
    Serial dependent random loads: a pure latency probe.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Sequence, Type

from repro.trace.errors import SpecError
from repro.trace.generators.base import LINE, RegionAllocator
from repro.trace.trace import (
    OP_ALU,
    OP_ATOM,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
    WarpTrace,
)

from repro.scenarios.schema import MEM_STEP_KINDS, Field

__all__ = [
    "LINES_PER_REGION",
    "PRIMITIVES",
    "Primitive",
    "WarpContext",
    "register_primitive",
]

#: 1 GiB regions of 128-byte lines.
LINES_PER_REGION = RegionAllocator.REGION_BYTES // LINE


class WarpContext:
    """Everything a primitive needs to emit one warp's phase segment.

    Address helpers mirror :class:`~repro.trace.generators.base.
    BenchmarkGenerator` (same streaming layout, same skewed-index
    distribution) and always reduce line indices modulo the region size,
    so *every* parameter combination keeps addresses inside the declared
    region — the region-disjointness invariant holds by construction.
    """

    __slots__ = ("cta_id", "warp_id", "warps_per_cta", "num_ctas",
                 "regions", "rng")

    def __init__(self, cta_id: int, warp_id: int, warps_per_cta: int,
                 num_ctas: int, regions: Mapping[str, int],
                 rng: random.Random) -> None:
        self.cta_id = cta_id
        self.warp_id = warp_id
        self.warps_per_cta = warps_per_cta
        self.num_ctas = num_ctas
        self.regions = regions
        self.rng = rng

    @property
    def warp_index(self) -> int:
        """Grid-global warp index (CTA-major)."""
        return self.cta_id * self.warps_per_cta + self.warp_id

    def line_addr(self, region: str, line_index: int) -> int:
        """Byte address of ``line_index`` within ``region`` (wrapped)."""
        return self.regions[region] + (line_index % LINES_PER_REGION) * LINE

    def stream_addr(self, region: str, iteration: int,
                    iters_per_warp: int) -> int:
        """Streaming address with the coalesced-kernel layout
        (iteration-major within a CTA block; adjacent warps fetch
        adjacent lines — see ``BenchmarkGenerator.stream_addr``)."""
        line = (self.cta_id * self.warps_per_cta * iters_per_warp
                + iteration * self.warps_per_cta + self.warp_id)
        return self.line_addr(region, line)

    def skewed_index(self, n: int, skew: float) -> int:
        """Popularity-skewed index in [0, n); ``skew == 1`` is uniform."""
        return min(n - 1, int(n * (self.rng.random() ** skew)))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class Primitive:
    """Base class: one subclass per registered scenario primitive.

    Subclasses declare ``name``, a one-line ``doc`` and a ``PARAMS``
    field table, and implement :meth:`emit`.
    """

    name: str = "?"
    doc: str = ""
    PARAMS: Dict[str, Field] = {}

    @classmethod
    def validate_params(cls, params: Mapping[str, Any], path: str,
                        regions: Sequence[str]) -> Dict[str, Any]:
        """Validate a raw params object against :attr:`PARAMS`.

        Fills defaults and rejects unknown keys; SpecError paths extend
        ``path`` (``phases[i].params.<field>``).
        """
        unknown = set(params) - set(cls.PARAMS)
        if unknown:
            raise SpecError(
                f"{path}.{sorted(unknown)[0]}",
                f"unknown parameter for primitive {cls.name!r}; known: "
                f"{sorted(cls.PARAMS)}")
        out: Dict[str, Any] = {}
        for fname, fld in cls.PARAMS.items():
            if fname in params:
                out[fname] = fld.check(params[fname], f"{path}.{fname}",
                                       regions)
            elif fld.required:
                raise SpecError(f"{path}.{fname}",
                                f"required by primitive {cls.name!r}")
            else:
                out[fname] = fld.default
        return cls.finalize_params(out, path)

    @classmethod
    def finalize_params(cls, params: Dict[str, Any],
                        path: str) -> Dict[str, Any]:
        """Hook for cross-field checks / derived defaults (override)."""
        return params

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        """Emit this warp's instruction segment for one phase."""
        raise NotImplementedError


PRIMITIVES: Dict[str, Type[Primitive]] = {}


def register_primitive(cls: Type[Primitive]) -> Type[Primitive]:
    """Class decorator: add a primitive to the registry (drop-in point).

    Raises ``ValueError`` on name collisions so two plugins can never
    silently shadow each other.
    """
    if not cls.name or cls.name == "?":
        raise ValueError(f"primitive {cls.__name__} needs a name")
    if cls.name in PRIMITIVES:
        raise ValueError(f"primitive {cls.name!r} already registered "
                         f"({PRIMITIVES[cls.name].__name__})")
    PRIMITIVES[cls.name] = cls
    return cls


def _scope_base(ctx: WarpContext, scope: str, tile_lines: int) -> int:
    """Starting line of a warp's tile under a sharing scope."""
    if scope == "warp":
        return ctx.warp_index * tile_lines
    if scope == "cta":
        return ctx.cta_id * tile_lines
    return 0  # global: every CTA shares one tile


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
@register_primitive
class StreamPrimitive(Primitive):
    """Coalesced streaming with a per-element op body."""

    name = "stream"
    doc = ("streaming sweep; per-element body of load/store/atom/alu/"
           "smem/bar steps with index stride/offset and line offsets")
    PARAMS = {
        "elements_per_warp": Field("int", default=16, lo=1, hi=4096,
                                   doc="body repetitions per warp"),
        "iters_per_warp": Field("int", default=0, lo=0, hi=1 << 20,
                                doc="stream layout length; 0 = derived as "
                                    "elements_per_warp * max index_stride"),
        "body": Field("steps", doc="per-element op sequence"),
    }

    @classmethod
    def finalize_params(cls, params: Dict[str, Any],
                        path: str) -> Dict[str, Any]:
        if params["iters_per_warp"] == 0:
            stride = max(
                [s["index_stride"] for s in params["body"]
                 if s["kind"] in MEM_STEP_KINDS] or [1])
            params["iters_per_warp"] = params["elements_per_warp"] * max(
                stride, 1)
        return params

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        n = params["iters_per_warp"]
        program: WarpTrace = []
        opcodes = {"load": OP_LOAD, "store": OP_STORE, "atom": OP_ATOM}
        for i in range(params["elements_per_warp"]):
            for step in params["body"]:
                kind = step["kind"]
                if kind in opcodes:
                    idx = step["index_stride"] * i + step["index_offset"]
                    addr = ctx.stream_addr(step["region"], idx, n)
                    addr += step["offset_lines"] * LINE
                    base = ctx.regions[step["region"]]
                    # Re-wrap after the fixed offset so stencil planes
                    # can never escape the region.
                    addr = base + (addr - base) % RegionAllocator.REGION_BYTES
                    program.append((opcodes[kind], (addr,)))
                elif kind == "alu":
                    program.append((OP_ALU, step["count"]))
                elif kind == "smem":
                    program.append((OP_SMEM, step["count"]))
                else:  # bar
                    program.append((OP_BAR, 0))
        return program


@register_primitive
class WorkingSetPrimitive(Primitive):
    """Deterministic cyclic scan: the exact reuse-distance knob."""

    name = "working_set"
    doc = ("cyclic scan over a warp/CTA/global tile; tile_lines sets the "
           "reuse distance, scope sets inter-CTA sharing")
    PARAMS = {
        "region": Field("region", doc="region holding the tile(s)"),
        "tile_lines": Field("int", default=320, lo=1, hi=1 << 20,
                            doc="tile footprint in lines"),
        "reads": Field("int", default=48, lo=1, hi=4096,
                       doc="scan reads per warp"),
        "alu_per_read": Field("int", default=2, lo=0, hi=64),
        "stride": Field("int", default=1, lo=1, hi=1024,
                        doc="cursor advance per read"),
        "phase_stride": Field("int", default=37, lo=0, hi=1024,
                              doc="per-warp starting-phase multiplier"),
        "scope": Field("choice", default="global",
                       choices=("warp", "cta", "global"),
                       doc="tile sharing: private per warp/CTA or global"),
        "store_every": Field("int", default=0, lo=0, hi=256,
                             doc="write back every k-th read (0 = never)"),
    }

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        tile = params["tile_lines"]
        base = _scope_base(ctx, params["scope"], tile)
        cursor = (ctx.warp_index * params["phase_stride"]) % tile
        region = params["region"]
        alu_n = params["alu_per_read"]
        store_every = params["store_every"]
        program: WarpTrace = []
        for r in range(params["reads"]):
            addr = ctx.line_addr(region, base + cursor)
            program.append((OP_LOAD, (addr,)))
            if alu_n:
                program.append((OP_ALU, alu_n))
            if store_every and (r + 1) % store_every == 0:
                program.append((OP_STORE, (addr,)))
            cursor = (cursor + params["stride"]) % tile
        return program


@register_primitive
class HotTablePrimitive(Primitive):
    """Popularity-skewed random gathers (divergence + sharing knobs)."""

    name = "hot_table"
    doc = ("skewed random gathers over a table; lanes sets divergence, "
           "skew sets the hot-head concentration, scope sets sharing")
    PARAMS = {
        "region": Field("region", doc="region holding the table(s)"),
        "accesses_per_warp": Field("int", default=32, lo=1, hi=4096),
        "table_lines": Field("int", default=256, lo=1, hi=1 << 20,
                             doc="table footprint in lines"),
        "skew": Field("float", default=1.0, lo=1.0, hi=16.0,
                      doc="1 = uniform; 3-6 = hot-head"),
        "lanes": Field("int", default=1, lo=1, hi=32,
                       doc="lane addresses per gather (divergence)"),
        "alu_per_access": Field("int", default=2, lo=0, hi=64),
        "store_every": Field("int", default=0, lo=0, hi=256,
                             doc="write back every k-th gather (0 = never)"),
        "scope": Field("choice", default="global",
                       choices=("warp", "cta", "global")),
    }

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        table = params["table_lines"]
        base = _scope_base(ctx, params["scope"], table)
        region = params["region"]
        skew = params["skew"]
        alu_n = params["alu_per_access"]
        store_every = params["store_every"]
        program: WarpTrace = []
        for a in range(params["accesses_per_warp"]):
            lanes = tuple(
                ctx.line_addr(region, base + ctx.skewed_index(table, skew))
                for _ in range(params["lanes"])
            )
            program.append((OP_LOAD, lanes))
            if alu_n:
                program.append((OP_ALU, alu_n))
            if store_every and (a + 1) % store_every == 0:
                program.append((OP_STORE, (lanes[0],)))
        return program


@register_primitive
class DivergentStreamPrimitive(Primitive):
    """Zero-reuse streaming, ``lanes`` distinct lines per access."""

    name = "divergent_stream"
    doc = ("uncoalesced streaming: each access touches lanes distinct "
           "lines; the coalescing-behaviour knob")
    PARAMS = {
        "region": Field("region", doc="region streamed through"),
        "out_region": Field("str", default="",
                            doc="optional region for a coalesced "
                                "write-back per element ('' = none)"),
        "elements_per_warp": Field("int", default=16, lo=1, hi=4096),
        "lanes": Field("int", default=8, lo=1, hi=32),
        "lane_stride_lines": Field("int", default=1, lo=1, hi=1024,
                                   doc="gap between lane lines"),
        "alu_per_element": Field("int", default=4, lo=0, hi=64),
    }

    @classmethod
    def validate_params(cls, params: Mapping[str, Any], path: str,
                        regions: Sequence[str]) -> Dict[str, Any]:
        out = super().validate_params(params, path, regions)
        if out["out_region"] and out["out_region"] not in regions:
            raise SpecError(f"{path}.out_region",
                            f"unknown region {out['out_region']!r}; "
                            f"declared regions: {list(regions)}")
        return out

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        n = params["elements_per_warp"]
        lanes = params["lanes"]
        stride = params["lane_stride_lines"]
        span = lanes * stride
        region = params["region"]
        alu_n = params["alu_per_element"]
        program: WarpTrace = []
        for i in range(n):
            line0 = (ctx.warp_index * n + i) * span
            program.append((OP_LOAD, tuple(
                ctx.line_addr(region, line0 + j * stride)
                for j in range(lanes))))
            if alu_n:
                program.append((OP_ALU, alu_n))
            if params["out_region"]:
                program.append((OP_STORE, (
                    ctx.stream_addr(params["out_region"], i, n),)))
        return program


@register_primitive
class PointerChasePrimitive(Primitive):
    """Serial dependent random loads: a pure latency probe."""

    name = "pointer_chase"
    doc = "dependent random loads over a pool; one outstanding miss per warp"
    PARAMS = {
        "region": Field("region", doc="region holding the pool"),
        "chain_length": Field("int", default=24, lo=1, hi=4096),
        "pool_lines": Field("int", default=1 << 18, lo=1, hi=1 << 22,
                            doc="pool footprint in lines"),
        "alu_per_hop": Field("int", default=1, lo=0, hi=64),
    }

    @classmethod
    def emit(cls, ctx: WarpContext, params: Mapping[str, Any]) -> WarpTrace:
        region = params["region"]
        pool = params["pool_lines"]
        alu_n = params["alu_per_hop"]
        program: WarpTrace = []
        for _ in range(params["chain_length"]):
            program.append((OP_LOAD,
                            (ctx.line_addr(region, ctx.rng.randrange(pool)),)))
            if alu_n:
                program.append((OP_ALU, alu_n))
        return program
