"""Generative workload space + the "where does G-Cache win?" sweep.

:func:`generate_space` enumerates a factorial space of scenario specs —
reuse distance (working-set tile size) x sharing scope x streaming
dilution x divergence x popularity skew, ~240 workloads — each a
composite of the registered primitives with its axis coordinates
recorded in ``meta``.  :func:`run_scenario_sweep` pushes the space
through the campaign engine on the **functional** fidelity (exact cache
counters, ~10x faster than timing) for a set of designs, classifies
every workload as a G-Cache win / loss / draw against the baseline, and
renders a byte-stable markdown report grouped by axis.

Determinism story: workloads are content-addressed (the task cache key
is the spec digest), and :meth:`SweepResult.manifest_json` contains only
spec digests and counter-derived numbers — no wall-clock — so two runs
of the same sweep produce bit-identical manifests and reports (the CI
``scenario-smoke`` job ``cmp``'s them).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.config import GPUConfig
from repro.stats.report import Table, geomean

from repro.scenarios.schema import FORMAT_NAME, FORMAT_VERSION, spec_digest

__all__ = [
    "SPACE_AXES",
    "SweepResult",
    "WorkloadOutcome",
    "generate_space",
    "run_scenario_sweep",
]

#: Axis values of the generative space (recorded per-spec in ``meta``).
SPACE_AXES: Dict[str, Tuple[Any, ...]] = {
    "tile_lines": (64, 160, 320, 640, 1280),
    "scope": ("warp", "cta", "global"),
    "stream_elems": (0, 8, 32, 96),
    "lanes": (1, 8),
    "skew": (1.0, 4.0),
}

#: IPC ratio beyond which a workload counts as a win / below as a loss.
WIN_THRESHOLD = 1.02
LOSS_THRESHOLD = 0.98


def _space_spec(tile_lines: int, scope: str, stream_elems: int,
                lanes: int, skew: float) -> Dict[str, Any]:
    """One composite workload at a point of the factorial space."""
    name = (f"ws{tile_lines}-{scope}-st{stream_elems}"
            f"-l{lanes}-k{int(skew)}")
    phases: List[Dict[str, Any]] = [
        {
            "primitive": "working_set",
            "params": {
                "region": "tiles",
                "tile_lines": tile_lines,
                # Long enough for adaptive designs to learn the reuse
                # pattern and re-traverse the tile several times; with
                # few reads every design looks identical (cold misses
                # dominate, nothing to protect yet).
                "reads": 96,
                "scope": scope,
                "alu_per_read": 2,
                "store_every": 8,
            },
        },
        {
            "primitive": "hot_table",
            "params": {
                "region": "table",
                "accesses_per_warp": 24,
                "table_lines": 192,
                "skew": skew,
                "lanes": lanes,
                "alu_per_access": 2,
                "scope": "global",
            },
        },
    ]
    if stream_elems:
        phases.append({
            "primitive": "stream",
            "params": {
                "elements_per_warp": stream_elems,
                "body": [
                    {"kind": "load", "region": "stream"},
                    {"kind": "alu", "count": 4},
                    {"kind": "store", "region": "stream_out"},
                ],
            },
        })
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": name,
        "scale": 1.0,
        "seed": 0,
        # 96 CTAs = 6 resident CTAs per core (Table-2 config): the
        # occupancy regime where L1 contention — and therefore the
        # win/loss contrast between designs — actually develops.
        "base_ctas": 96,
        "warps_per_cta": 8,
        "regions": ["tiles", "table", "stream", "stream_out"],
        "phases": phases,
        "meta": {
            "space": "gcache-axes-v1",
            "tile_lines": tile_lines,
            "scope": scope,
            "stream_elems": stream_elems,
            "lanes": lanes,
            "skew": skew,
        },
    }


def generate_space(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """The factorial scenario space (~240 specs), in deterministic order.

    Args:
        limit: Truncate to the first N specs — CI smoke runs and unit
            tests use small prefixes of the same deterministic order.
    """
    specs = [
        _space_spec(tile, scope, elems, lanes, skew)
        for tile in SPACE_AXES["tile_lines"]
        for scope in SPACE_AXES["scope"]
        for elems in SPACE_AXES["stream_elems"]
        for lanes in SPACE_AXES["lanes"]
        for skew in SPACE_AXES["skew"]
    ]
    return specs[:limit] if limit is not None else specs


@dataclass
class WorkloadOutcome:
    """One workload's sweep outcome across the design set."""

    name: str
    digest: str
    meta: Dict[str, Any]
    #: design key -> {"ipc", "instructions", "cycles", "l1": snapshot}
    designs: Dict[str, Dict[str, Any]]

    def speedup(self, design: str, baseline: str = "bs") -> float:
        return self.designs[design]["ipc"] / self.designs[baseline]["ipc"]

    def verdict(self, design: str = "gc", baseline: str = "bs") -> str:
        s = self.speedup(design, baseline)
        if s > WIN_THRESHOLD:
            return "win"
        if s < LOSS_THRESHOLD:
            return "loss"
        return "draw"


@dataclass
class SweepResult:
    """Everything a scenario sweep produced, in deterministic order."""

    designs: Tuple[str, ...]
    outcomes: List[WorkloadOutcome]

    def counts(self, design: str = "gc") -> Dict[str, int]:
        out = {"win": 0, "draw": 0, "loss": 0}
        for o in self.outcomes:
            out[o.verdict(design)] += 1
        return out

    # ------------------------------------------------------------------
    # Byte-stable artefacts
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """Deterministic sweep manifest: digests and counters only.

        Unlike the engine's campaign manifest (which records wall-clock
        timings), this contains nothing host- or time-dependent, so two
        runs of the same sweep serialize bit-identically.
        """
        return {
            "format": "repro-scenario-sweep",
            "version": 1,
            "designs": list(self.designs),
            "workloads": [
                {
                    "name": o.name,
                    "spec_digest": o.digest,
                    "meta": o.meta,
                    "designs": o.designs,
                }
                for o in self.outcomes
            ],
        }

    def manifest_json(self) -> str:
        return json.dumps(self.manifest(), sort_keys=True, indent=2) + "\n"

    def report_markdown(self, design: str = "gc", baseline: str = "bs") -> str:
        """The "where G-Cache wins / loses" report (byte-stable)."""
        lines: List[str] = []
        counts = self.counts(design)
        total = len(self.outcomes)
        speedups = [o.speedup(design) for o in self.outcomes]
        lines.append(f"# Scenario sweep: {design} vs {baseline}")
        lines.append("")
        lines.append(
            f"{total} workloads; {counts['win']} wins, {counts['draw']} "
            f"draws, {counts['loss']} losses "
            f"(win: IPC ratio > {WIN_THRESHOLD}, loss: < {LOSS_THRESHOLD}). "
            f"Geomean speedup {geomean(speedups):.4f}.")
        lines.append("")

        # Per-axis marginals: where in the space the design helps.
        lines.append("## Speedup by axis")
        lines.append("")
        axis_table = Table(["axis", "value", "workloads", "geomean speedup",
                            "wins", "losses"])
        for axis in sorted(SPACE_AXES):
            for value in SPACE_AXES[axis]:
                group = [o for o in self.outcomes
                         if o.meta.get(axis) == value]
                if not group:
                    continue
                gsp = geomean(o.speedup(design) for o in group)
                wins = sum(1 for o in group if o.verdict(design) == "win")
                losses = sum(1 for o in group if o.verdict(design) == "loss")
                axis_table.row([axis, value, len(group), f"{gsp:.4f}",
                                wins, losses])
        lines.append(axis_table.to_markdown())
        lines.append("")

        # Extreme workloads, both directions.
        ranked = sorted(self.outcomes,
                        key=lambda o: (-o.speedup(design), o.name))
        for title, sample in (("## Largest wins", ranked[:10]),
                              ("## Largest losses", ranked[-10:][::-1])):
            lines.append(title)
            lines.append("")
            t = Table(["workload", "speedup", f"{baseline} L1 miss",
                       f"{design} L1 miss", f"{design} bypass ratio"])
            for o in sample:
                base_l1 = o.designs[baseline]["l1"]
                des_l1 = o.designs[design]["l1"]
                t.row([
                    o.name,
                    f"{o.speedup(design):.4f}",
                    f"{base_l1['miss_rate']:.1%}",
                    f"{des_l1['miss_rate']:.1%}",
                    f"{des_l1['bypass_ratio']:.1%}",
                ])
            lines.append(t.to_markdown())
            lines.append("")
        return "\n".join(lines)


def run_scenario_sweep(
    specs: Optional[Sequence[Mapping[str, Any]]] = None,
    *,
    designs: Sequence[str] = ("bs", "gc"),
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    engine: Any = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Run the scenario space through the functional backend.

    Args:
        specs: Spec documents; defaults to the full
            :func:`generate_space`.
        designs: Design keys to evaluate; the first entry is the
            baseline the win/loss verdicts compare against.
        scale / seed: Applied to every spec (content-addressed into the
            cache keys).
        engine: Share a pre-built :class:`~repro.runner.CampaignEngine`;
            otherwise one is built from ``jobs``/``cache_dir``.
    """
    from repro.runner import CampaignEngine, ResultCache, Task
    from repro.sim.designs import DESIGN_KEYS

    unknown = [d for d in designs if d not in DESIGN_KEYS]
    if unknown:
        raise ValueError(
            f"unknown designs {unknown}; known: {list(DESIGN_KEYS)}")
    if specs is None:
        specs = generate_space()
    if engine is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        engine = CampaignEngine(jobs=jobs, cache=cache)

    docs = [dict(s) for s in specs]
    tasks = [
        Task(kind="simulate", scenario=doc, design=design,
             scale=scale, seed=seed, fidelity="functional",
             config=config if config is not None else GPUConfig())
        for doc in docs
        for design in designs
    ]
    results = engine.run(tasks)

    outcomes: List[WorkloadOutcome] = []
    it = iter(results)
    for doc in docs:
        per_design: Dict[str, Dict[str, Any]] = {}
        for design in designs:
            r = next(it)
            per_design[design] = {
                "ipc": r.ipc,
                "instructions": r.instructions,
                "cycles": r.cycles,
                "l1": r.l1.snapshot(),
            }
        outcomes.append(WorkloadOutcome(
            name=doc["name"],
            digest=spec_digest(doc, scale=scale, seed=seed),
            meta=dict(doc.get("meta") or {}),
            designs=per_design,
        ))
    return SweepResult(designs=tuple(designs), outcomes=outcomes)
