"""Figure 10: speedups with 64 KB L1 caches.

Same matrix as Figure 8 but with a doubled L1 (the paper's scalability
study).  Shape target: G-Cache keeps helping even with a larger cache —
the paper reports +35.7 % (sensitive) / +16.1 % (all) for GC vs +40.1 % /
+19.5 % for SPDP-B — because contention is reduced but not eliminated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import EvalSuite
from repro.experiments.fig8_speedup import fig8_speedups, render_fig8
from repro.runner import CampaignEngine
from repro.sim.config import GPUConfig

__all__ = ["make_64kb_suite", "fig10_speedups", "render_fig10"]

FIG10_DESIGNS: Sequence[str] = ("bs", "bs-s", "spdp-b", "gc")


def make_64kb_suite(
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[CampaignEngine] = None,
) -> EvalSuite:
    """An :class:`EvalSuite` with the L1 doubled to 64 KB."""
    return EvalSuite(
        config=GPUConfig().with_l1_size(64 * 1024),
        benchmarks=benchmarks,
        scale=scale,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
        engine=engine,
    )


def fig10_speedups(suite: EvalSuite, designs: Sequence[str] = FIG10_DESIGNS):
    """Speedups over the 64 KB baseline (see :func:`fig8_speedups`)."""
    return fig8_speedups(suite, designs)


def render_fig10(suite: EvalSuite, designs: Sequence[str] = FIG10_DESIGNS) -> str:
    text = render_fig8(suite, designs)
    return text.replace(
        "Figure 8: IPC speedup over baseline (BS)",
        "Figure 10: IPC speedup over baseline, 64KB L1 caches",
    )
