"""Figure 8: IPC speedup of every design over the baseline.

Paper headline numbers this experiment targets (shape, not absolutes):

* GC beats BS on every cache-sensitive benchmark (paper: +13.4 % to
  +51.8 %, +30.9 % gmean) and is competitive with SPDP-B.
* GC > SPDP-B on SPMV; GC < SPDP-B on KMN and NW.
* PDP-3 lands close to PDP-8 (paper: +23.8 % vs +26 % on sensitive).
* BS-S (3-bit SRRIP without bypass) is roughly performance-neutral.
* Cache-insensitive benchmarks are unaffected by every design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import PAPER_DESIGNS, EvalSuite, group_rows
from repro.stats.report import Table, format_speedup, geomean

__all__ = ["fig8_speedups", "render_fig8"]


def fig8_speedups(
    suite: EvalSuite,
    designs: Sequence[str] = PAPER_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Speedup over BS per benchmark per design.

    Returns ``{benchmark: {design: speedup}}``; group geometric means are
    added under the pseudo-benchmarks ``GM-sensitive``, ``GM-moderate``,
    ``GM-insensitive`` and ``GM-all``.
    """
    data: Dict[str, Dict[str, float]] = {}
    for bench in suite.benchmarks:
        data[bench] = {d: suite.speedup(bench, d) for d in designs}

    def gmean_row(benches: List[str]) -> Dict[str, float]:
        present = [b for b in benches if b in data]
        return {d: geomean(data[b][d] for b in present) for d in designs}

    for label, benches in group_rows():
        key = {
            "Cache Sensitive": "GM-sensitive",
            "Moderately Sensitive": "GM-moderate",
            "Cache Insensitive": "GM-insensitive",
        }[label]
        if any(b in data for b in benches):
            data[key] = gmean_row(benches)
    data["GM-all"] = gmean_row(list(suite.benchmarks))
    return data


def render_fig8(
    suite: EvalSuite, designs: Sequence[str] = PAPER_DESIGNS
) -> str:
    """Text rendering of Figure 8 (one row per benchmark + gmeans)."""
    data = fig8_speedups(suite, designs)
    table = Table(
        ["benchmark"] + [d.upper() for d in designs],
        title="Figure 8: IPC speedup over baseline (BS)",
    )
    for label, benches in group_rows():
        for bench in benches:
            if bench in data and bench in suite.benchmarks:
                table.row([bench] + [format_speedup(data[bench][d]) for d in designs])
    table.rule()
    for key in ("GM-sensitive", "GM-moderate", "GM-insensitive", "GM-all"):
        if key in data:
            table.row([key] + [format_speedup(data[key][d]) for d in designs])
    return table.render()
