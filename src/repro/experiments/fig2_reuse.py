"""Figure 2: L1 reuse-count distribution under the baseline.

Shows, per benchmark, the fraction of L1 cache-line generations that were
reused 0 / 1 / 2 / 3+ times before eviction.  Shape target: a large
zero-reuse fraction everywhere, with BFS near the top (~80 % in the
paper) — the motivation for bypassing.

The distribution is a property of the baseline cache contents, so the
timing-free replay driver is sufficient (and much faster).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.runner import CampaignEngine, Task
from repro.sim.config import GPUConfig
from repro.stats.report import Table, format_pct
from repro.trace.suite import ALL_BENCHMARKS

__all__ = ["fig2_reuse_distribution", "render_fig2"]

BUCKET_LABELS = ("0", "1", "2", "3+")


def fig2_reuse_distribution(
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    engine: Optional[CampaignEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark reuse-count buckets for the baseline L1.

    Returns ``{benchmark: {"0": f0, "1": f1, "2": f2, "3+": f3}}``.
    The replays run through a campaign ``engine`` when one is given
    (parallel + persistently cached); the default is serial/uncached.
    """
    if benchmarks is None:
        benchmarks = list(ALL_BENCHMARKS)
    if config is None:
        config = GPUConfig()
    if engine is None:
        engine = CampaignEngine(jobs=1)
    tasks = [
        Task(
            kind="replay",
            benchmark=bench,
            design="bs",
            scale=scale,
            seed=seed,
            config=config,
            include_l2=False,
        )
        for bench in benchmarks
    ]
    results = engine.run(tasks)
    return {
        bench: result.l1.reuse.buckets()
        for bench, result in zip(benchmarks, results)
    }


def render_fig2(data: Dict[str, Dict[str, float]]) -> str:
    table = Table(
        ["benchmark"] + [f"reuse={b}" for b in BUCKET_LABELS],
        title="Figure 2: L1 reuse count distribution (baseline)",
    )
    for bench, buckets in data.items():
        table.row([bench] + [format_pct(buckets[b]) for b in BUCKET_LABELS])
    return table.render()
