"""Figures 3 and 4: L1 cache-size sensitivity of the baseline.

Sweeps the L1 capacity for the cache-sensitive benchmarks and reports
miss rate (Fig. 3) and IPC speedup relative to the 16 KB point (Fig. 4).
Shape target: monotone improvement with size — these benchmarks benefit
from capacity because contention shrinks, which is the paper's evidence
that their misses are contention, not streaming.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner import CampaignEngine, Task
from repro.sim.config import GPUConfig
from repro.sim.simulator import RunResult
from repro.stats.report import Table, format_pct, format_speedup
from repro.trace.suite import CACHE_SENSITIVE

__all__ = ["SIZE_SWEEP", "size_sensitivity", "render_fig3", "render_fig4"]

#: L1 capacities swept (bytes): 16 KB to 128 KB, paper-style.
SIZE_SWEEP: Tuple[int, ...] = (16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024)


def size_sensitivity(
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = SIZE_SWEEP,
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    engine: Optional[CampaignEngine] = None,
) -> Dict[str, Dict[int, RunResult]]:
    """Baseline runs per benchmark per L1 size.

    Runs through a campaign ``engine`` when given (parallel across the
    whole benchmark x size grid, persistently cached); the default is
    serial/uncached.
    """
    if benchmarks is None:
        benchmarks = list(CACHE_SENSITIVE)
    if config is None:
        config = GPUConfig()
    if engine is None:
        engine = CampaignEngine(jobs=1)
    grid = [(bench, size) for bench in benchmarks for size in sizes]
    results = engine.run(
        [
            Task(
                kind="simulate",
                benchmark=bench,
                design="bs",
                scale=scale,
                seed=seed,
                config=config.with_l1_size(size),
            )
            for bench, size in grid
        ]
    )
    out: Dict[str, Dict[int, RunResult]] = {bench: {} for bench in benchmarks}
    for (bench, size), result in zip(grid, results):
        out[bench][size] = result
    return out


def _size_label(size: int) -> str:
    return f"{size >> 10}KB"


def render_fig3(
    data: Dict[str, Dict[int, RunResult]], sizes: Sequence[int] = SIZE_SWEEP
) -> str:
    table = Table(
        ["benchmark"] + [_size_label(s) for s in sizes],
        title="Figure 3: L1 miss rate vs L1 size (baseline)",
    )
    for bench, runs in data.items():
        table.row([bench] + [format_pct(runs[s].l1.miss_rate) for s in sizes])
    return table.render()


def render_fig4(
    data: Dict[str, Dict[int, RunResult]], sizes: Sequence[int] = SIZE_SWEEP
) -> str:
    table = Table(
        ["benchmark"] + [_size_label(s) for s in sizes],
        title="Figure 4: speedup vs L1 size (normalized to the smallest)",
    )
    base_size = sizes[0]
    for bench, runs in data.items():
        base = runs[base_size]
        table.row(
            [bench]
            + [format_speedup(runs[s].speedup_over(base)) for s in sizes]
        )
    return table.render()
