"""Shared infrastructure for the paper-figure experiments.

:class:`EvalSuite` runs the benchmark x design matrix once and caches the
results, so Fig. 8 (speedups), Fig. 9 (miss rates) and Table 3 (bypass
ratios) are different views of the same runs — exactly as in the paper,
where they come from one simulation campaign.

Since the campaign engine refactor the suite is a thin veneer over
:class:`repro.runner.CampaignEngine`: every run is described as a
:class:`repro.runner.Task`, which gives the suite process-pool
parallelism (``jobs=...``), a persistent on-disk result cache
(``cache_dir=...``) and a per-run manifest for free, while results stay
bit-identical to the old serial in-memory path (each task re-executes
from a self-contained description).  :meth:`EvalSuite.run_matrix`
prefetches the whole campaign in two parallel waves (PD sweeps, then
simulations); individual :meth:`EvalSuite.run` calls stay lazily
memoized on top.

The SPDP-B design needs a per-benchmark *optimal* protecting distance
(the paper's Table 3 lists them).  We find it the way the authors did:
an offline sweep over the timing-free replay driver, minimizing L1 miss
rate (canonical implementation: :func:`repro.runner.task.sweep_optimal_pd`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner import CampaignEngine, ResultCache, Task
from repro.runner.task import PD_SWEEP, sweep_optimal_pd
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.simulator import RunResult
from repro.stats.report import geomean
from repro.trace.suite import (
    ALL_BENCHMARKS,
    CACHE_INSENSITIVE,
    CACHE_SENSITIVE,
    MODERATELY_SENSITIVE,
    build_benchmark,
)
from repro.trace.trace import KernelTrace

__all__ = [
    "PD_SWEEP",
    "PAPER_DESIGNS",
    "EvalSuite",
    "sweep_optimal_pd",
    "group_rows",
]

#: Designs evaluated in Figs. 8-10 (SPDP-B is parameterized separately).
PAPER_DESIGNS: Tuple[str, ...] = ("bs", "bs-s", "pdp-3", "pdp-8", "spdp-b", "gc")


class EvalSuite:
    """One simulation campaign: benchmarks x designs, lazily evaluated.

    Args:
        config: Architectural configuration (Table 2 default).
        benchmarks: Benchmark names; defaults to the full Table-1 suite.
        scale: Trace scale factor (1.0 = experiment size).
        seed: Trace generation seed.
        jobs: Worker processes for batch execution (1 = serial, the
            default; ``None`` = ``os.cpu_count()``).  Ignored when an
            explicit ``engine`` is supplied.
        cache_dir: Persistent result-cache directory; ``None`` disables
            on-disk caching (in-memory memoization always applies).
        retries: Failures tolerated per task before the campaign gives
            up on it (forwarded to the engine; ignored with ``engine=``).
        task_timeout: Per-attempt wall-clock budget in seconds, enforced
            under ``jobs >= 2`` (forwarded; ignored with ``engine=``).
        engine: Share a pre-built campaign engine (and thus its cache,
            journal, fault plan and counters) across several suites /
            harnesses.
        fidelity: Simulation fidelity for every simulate task in the
            suite: ``"timing"`` (cycle-accurate, default) or
            ``"functional"`` (fast vectorized replay; exact cache
            counters, estimated cycles).  PD sweeps are unaffected (they
            already run the timing-free replay driver).
        scenarios: Declarative scenario spec documents
            (:mod:`repro.scenarios`).  Each is canonicalized with the
            suite's scale/seed and its name joins the workload matrix
            alongside ``benchmarks`` — every suite method (``run``,
            ``run_matrix``, ``speedup``, ...) accepts scenario names
            transparently.  When ``benchmarks`` is omitted and scenarios
            are given, the matrix is the scenarios alone (not Table 1 +
            scenarios).
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        scale: float = 1.0,
        seed: int = 0,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        engine: Optional[CampaignEngine] = None,
        fidelity: str = "timing",
        scenarios: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> None:
        self.config = config if config is not None else GPUConfig()
        if benchmarks:
            self.benchmarks = list(benchmarks)
        else:
            self.benchmarks = [] if scenarios else list(ALL_BENCHMARKS)
        self.scale = scale
        self.seed = seed
        self.fidelity = fidelity
        self._scenarios: Dict[str, Dict[str, Any]] = {}
        if scenarios:
            from repro.scenarios import canonical_spec

            for doc in scenarios:
                spec = canonical_spec(doc, scale=scale, seed=seed)
                name = spec["name"]
                if name in self._scenarios or name in self.benchmarks:
                    raise ValueError(
                        f"duplicate workload name {name!r} in the suite matrix"
                    )
                self._scenarios[name] = spec
                self.benchmarks.append(name)
        if engine is None:
            cache = ResultCache(cache_dir) if cache_dir is not None else None
            engine = CampaignEngine(
                jobs=jobs, cache=cache, retries=retries, task_timeout=task_timeout
            )
        self.engine = engine
        self._traces: Dict[str, KernelTrace] = {}
        self._results: Dict[Tuple[str, str], RunResult] = {}
        self._optimal_pds: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Task construction
    # ------------------------------------------------------------------
    def _sim_task(self, benchmark: str, design: str, inline: bool) -> Task:
        """Simulate-task for one grid point.

        ``inline`` attaches the memoized trace as an execution shortcut
        for serial in-process runs; the cache key is unaffected (it is
        always derived from ``(benchmark, scale, seed)``).
        """
        return Task(
            kind="simulate",
            design=design,
            pd=self.optimal_pd(benchmark) if design == "spdp-b" else None,
            scale=self.scale,
            seed=self.seed,
            config=self.config,
            trace=self._traces.get(benchmark) if inline else None,
            fidelity=self.fidelity,
            **self._workload_fields(benchmark),
        )

    def _pd_task(self, benchmark: str, inline: bool = False) -> Task:
        return Task(
            kind="pd-sweep",
            scale=self.scale,
            seed=self.seed,
            config=self.config,
            trace=self._traces.get(benchmark) if inline else None,
            **self._workload_fields(benchmark),
        )

    def _workload_fields(self, name: str) -> Dict[str, Any]:
        """Task identity for one matrix workload: benchmark or scenario."""
        if name in self._scenarios:
            return {"scenario": self._scenarios[name]}
        return {"benchmark": name}

    # ------------------------------------------------------------------
    # Lazily-built artefacts
    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> KernelTrace:
        if benchmark not in self._traces:
            if benchmark in self._scenarios:
                from repro.scenarios import build_scenario

                # Canonical docs already carry the suite's scale/seed.
                self._traces[benchmark] = build_scenario(
                    self._scenarios[benchmark]
                )
            else:
                self._traces[benchmark] = build_benchmark(
                    benchmark, scale=self.scale, seed=self.seed
                )
        return self._traces[benchmark]

    def optimal_pd(self, benchmark: str) -> int:
        """The SPDP-B protecting distance for ``benchmark`` (Table 3)."""
        if benchmark not in self._optimal_pds:
            self.trace(benchmark)  # memoize once; attached as a shortcut
            self._optimal_pds[benchmark] = self.engine.run_one(
                self._pd_task(benchmark, inline=True)
            )
        return self._optimal_pds[benchmark]

    def _design_for(self, key: str, benchmark: str) -> DesignSpec:
        if key == "spdp-b":
            return make_design("spdp-b", pd=self.optimal_pd(benchmark))
        return make_design(key)

    def run(self, benchmark: str, design: str) -> RunResult:
        """Simulate (benchmark, design) through the engine, memoized."""
        cache_key = (benchmark, design)
        if cache_key not in self._results:
            self.trace(benchmark)  # memoize once; attached as a shortcut
            self._results[cache_key] = self.engine.run_one(
                self._sim_task(benchmark, design, inline=True)
            )
        return self._results[cache_key]

    # ------------------------------------------------------------------
    # Campaign prefetch
    # ------------------------------------------------------------------
    def run_matrix(
        self,
        designs: Sequence[str] = PAPER_DESIGNS,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run the whole benchmark x design matrix through the engine.

        Fans out in two waves so the engine can parallelize each: first
        the SPDP-B PD sweeps (they parameterize the spdp-b tasks), then
        every outstanding simulation.  Populates the same memo
        :meth:`run` uses, so figure renderers afterwards hit memory only.
        """
        benches = list(benchmarks) if benchmarks is not None else self.benchmarks
        if "spdp-b" in designs:
            missing = [b for b in benches if b not in self._optimal_pds]
            if missing:
                pds = self.engine.run([self._pd_task(b) for b in missing])
                self._optimal_pds.update(zip(missing, pds))
        grid = [
            (b, d) for b in benches for d in designs if (b, d) not in self._results
        ]
        if grid:
            results = self.engine.run(
                [self._sim_task(b, d, inline=False) for b, d in grid]
            )
            self._results.update(zip(grid, results))
        return {
            (b, d): self._results[(b, d)] for b in benches for d in designs
        }

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def speedup(self, benchmark: str, design: str) -> float:
        """IPC speedup of ``design`` over the baseline (BS)."""
        return self.run(benchmark, design).speedup_over(self.run(benchmark, "bs"))

    def speedup_gmean(self, benchmarks: Sequence[str], design: str) -> float:
        return geomean(self.speedup(b, design) for b in benchmarks)


def group_rows() -> List[Tuple[str, List[str]]]:
    """The paper's three benchmark groups, in Table-1 order."""
    return [
        ("Cache Sensitive", list(CACHE_SENSITIVE)),
        ("Moderately Sensitive", list(MODERATELY_SENSITIVE)),
        ("Cache Insensitive", list(CACHE_INSENSITIVE)),
    ]
