"""Shared infrastructure for the paper-figure experiments.

:class:`EvalSuite` runs the benchmark x design matrix once and caches the
results in memory, so Fig. 8 (speedups), Fig. 9 (miss rates) and Table 3
(bypass ratios) are different views of the same runs — exactly as in the
paper, where they come from one simulation campaign.

The SPDP-B design needs a per-benchmark *optimal* protecting distance
(the paper's Table 3 lists them).  We find it the way the authors did:
an offline sweep, implemented here over the timing-free replay driver
(:func:`repro.sim.replay.replay`) for speed, minimizing L1 miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.replay import build_core_streams, replay
from repro.sim.simulator import RunResult, simulate
from repro.stats.report import geomean
from repro.trace.suite import (
    ALL_BENCHMARKS,
    CACHE_INSENSITIVE,
    CACHE_SENSITIVE,
    MODERATELY_SENSITIVE,
    build_benchmark,
)
from repro.trace.trace import KernelTrace

__all__ = [
    "PD_SWEEP",
    "EvalSuite",
    "sweep_optimal_pd",
    "group_rows",
]

#: Candidate protecting distances for the SPDP-B offline sweep.
PD_SWEEP: Tuple[int, ...] = (4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 68, 96)

#: Designs evaluated in Figs. 8-10 (SPDP-B is parameterized separately).
PAPER_DESIGNS: Tuple[str, ...] = ("bs", "bs-s", "pdp-3", "pdp-8", "spdp-b", "gc")


def sweep_optimal_pd(
    trace: KernelTrace,
    config: GPUConfig,
    candidates: Sequence[int] = PD_SWEEP,
) -> int:
    """Offline per-benchmark PD sweep (defines SPDP-B, as in the paper).

    Uses the timing-free replay driver and picks the PD with the lowest
    L1 miss rate; ties go to the smaller PD (cheaper hardware).
    """
    streams = build_core_streams(trace, config)
    best_pd = candidates[0]
    best_miss = float("inf")
    for pd in candidates:
        result = replay(
            trace,
            config,
            make_design("spdp-b", pd=pd),
            streams=streams,
            include_l2=False,
        )
        miss = result.l1.miss_rate
        if miss < best_miss - 1e-9:
            best_miss = miss
            best_pd = pd
    return best_pd


class EvalSuite:
    """One simulation campaign: benchmarks x designs, lazily evaluated.

    Args:
        config: Architectural configuration (Table 2 default).
        benchmarks: Benchmark names; defaults to the full Table-1 suite.
        scale: Trace scale factor (1.0 = experiment size).
        seed: Trace generation seed.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else GPUConfig()
        self.benchmarks = list(benchmarks) if benchmarks else list(ALL_BENCHMARKS)
        self.scale = scale
        self.seed = seed
        self._traces: Dict[str, KernelTrace] = {}
        self._results: Dict[Tuple[str, str], RunResult] = {}
        self._optimal_pds: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lazily-built artefacts
    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> KernelTrace:
        if benchmark not in self._traces:
            self._traces[benchmark] = build_benchmark(
                benchmark, scale=self.scale, seed=self.seed
            )
        return self._traces[benchmark]

    def optimal_pd(self, benchmark: str) -> int:
        """The SPDP-B protecting distance for ``benchmark`` (Table 3)."""
        if benchmark not in self._optimal_pds:
            self._optimal_pds[benchmark] = sweep_optimal_pd(
                self.trace(benchmark), self.config
            )
        return self._optimal_pds[benchmark]

    def _design_for(self, key: str, benchmark: str) -> DesignSpec:
        if key == "spdp-b":
            return make_design("spdp-b", pd=self.optimal_pd(benchmark))
        return make_design(key)

    def run(self, benchmark: str, design: str) -> RunResult:
        """Simulate (benchmark, design), memoized."""
        cache_key = (benchmark, design)
        if cache_key not in self._results:
            self._results[cache_key] = simulate(
                self.trace(benchmark),
                self.config,
                self._design_for(design, benchmark),
            )
        return self._results[cache_key]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def speedup(self, benchmark: str, design: str) -> float:
        """IPC speedup of ``design`` over the baseline (BS)."""
        return self.run(benchmark, design).speedup_over(self.run(benchmark, "bs"))

    def speedup_gmean(self, benchmarks: Sequence[str], design: str) -> float:
        return geomean(self.speedup(b, design) for b in benchmarks)


def group_rows() -> List[Tuple[str, List[str]]]:
    """The paper's three benchmark groups, in Table-1 order."""
    return [
        ("Cache Sensitive", list(CACHE_SENSITIVE)),
        ("Moderately Sensitive", list(MODERATELY_SENSITIVE)),
        ("Cache Insensitive", list(CACHE_INSENSITIVE)),
    ]
