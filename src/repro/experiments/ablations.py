"""Ablation studies for the design choices the paper discusses.

* **Victim-bit sharing** (Section 4.1/4.3): ``S_v`` SIMT cores share one
  victim bit, shrinking the ``O_v = P x N x M`` storage by ``S_v`` at
  the cost of false contention hints.
* **M-th-bypass adaptive aging** (Section 5.1): ages RRPVs once per M
  bypasses, extending protection across large reuse distances — the fix
  the paper sketches for KMN and NW.
* **Periodic switch shutdown** (Section 4.2): interval sweep.
* **Warp-scheduler interaction** (Section 6.2): the paper argues G-Cache
  composes with scheduler-side techniques; we compare LRR vs GTO with
  and without G-Cache.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.gcache import GCacheConfig
from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.simulator import RunResult, simulate
from repro.stats.report import Table, format_pct, format_speedup
from repro.trace.suite import build_benchmark
from repro.trace.trace import KernelTrace

__all__ = [
    "victim_bit_sharing_ablation",
    "adaptive_aging_ablation",
    "shutdown_interval_ablation",
    "scheduler_ablation",
]


def _trace(benchmark: str, scale: float, seed: int) -> KernelTrace:
    return build_benchmark(benchmark, scale=scale, seed=seed)


def victim_bit_sharing_ablation(
    benchmarks: Sequence[str],
    share_factors: Sequence[int] = (1, 2, 4, 16),
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[int, RunResult]]:
    """G-Cache with ``S_v`` cores sharing one victim bit."""
    if config is None:
        config = GPUConfig()
    out: Dict[str, Dict[int, RunResult]] = {}
    for bench in benchmarks:
        trace = _trace(bench, scale, seed)
        out[bench] = {
            sv: simulate(trace, config, make_design("gc"), victim_share_factor=sv)
            for sv in share_factors
        }
    return out


def adaptive_aging_ablation(
    benchmarks: Sequence[str],
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[str, RunResult]]:
    """BS vs GC vs GC-M (adaptive M-th-bypass aging).

    Expected shape: GC-M recovers part of SPDP-B's advantage on the
    large-reuse-distance benchmarks (KMN, NW) without hurting the rest.
    """
    if config is None:
        config = GPUConfig()
    out: Dict[str, Dict[str, RunResult]] = {}
    for bench in benchmarks:
        trace = _trace(bench, scale, seed)
        out[bench] = {
            key: simulate(trace, config, make_design(key))
            for key in ("bs", "gc", "gc-m")
        }
    return out


def shutdown_interval_ablation(
    benchmarks: Sequence[str],
    intervals: Sequence[int] = (0, 2048, 8192, 32768),
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[int, RunResult]]:
    """Sweep of the periodic bypass-switch shutdown interval (0 = never)."""
    if config is None:
        config = GPUConfig()
    out: Dict[str, Dict[int, RunResult]] = {}
    for bench in benchmarks:
        trace = _trace(bench, scale, seed)
        out[bench] = {}
        for interval in intervals:
            design = make_design(
                "gc", gcache_config=GCacheConfig(shutdown_interval=interval)
            )
            out[bench][interval] = simulate(trace, config, design)
    return out


def scheduler_ablation(
    benchmarks: Sequence[str],
    schedulers: Sequence[str] = ("lrr", "gto"),
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, RunResult]]]:
    """{benchmark: {scheduler: {design: result}}} for BS and GC.

    Tests the paper's composability claim: G-Cache should help under a
    cache-friendlier scheduler (GTO) too, not only under LRR.
    """
    if config is None:
        config = GPUConfig()
    out: Dict[str, Dict[str, Dict[str, RunResult]]] = {}
    for bench in benchmarks:
        trace = _trace(bench, scale, seed)
        out[bench] = {}
        for sched in schedulers:
            cfg = config.with_scheduler(sched)
            out[bench][sched] = {
                key: simulate(trace, cfg, make_design(key)) for key in ("bs", "gc")
            }
    return out


def render_sharing_table(data: Dict[str, Dict[int, RunResult]]) -> str:
    factors = sorted(next(iter(data.values())).keys())
    table = Table(
        ["benchmark"] + [f"Sv={sv}" for sv in factors],
        title="Ablation: victim-bit sharing (L1 miss rate under GC)",
    )
    for bench, runs in data.items():
        table.row([bench] + [format_pct(runs[sv].l1.miss_rate) for sv in factors])
    return table.render()
