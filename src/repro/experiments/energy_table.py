"""Energy comparison (our extension of the paper's Section-3 motivation).

The paper argues that reducing misses "saves bandwidth and energy
consumption" but never quantifies it.  This experiment applies the
:mod:`repro.stats.energy` model to the Fig. 8 campaign and reports each
design's memory-system energy relative to the baseline, split into
dynamic and static components.

Expected shape: G-Cache reduces energy on cache-sensitive benchmarks
through (a) fewer L2/NoC round trips and (b) shorter runtimes (static
energy), while staying neutral on the insensitive group.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import EvalSuite, group_rows
from repro.stats.energy import EnergyModel
from repro.stats.report import Table, geomean

__all__ = ["energy_ratios", "render_energy_table"]


def energy_ratios(
    suite: EvalSuite,
    designs: Sequence[str] = ("bs", "gc"),
    model: EnergyModel = EnergyModel(),
) -> Dict[str, Dict[str, float]]:
    """Total-energy ratio vs BS per benchmark per design (+ gmeans)."""
    data: Dict[str, Dict[str, float]] = {}
    for bench in suite.benchmarks:
        base = model.evaluate(suite.run(bench, "bs"))
        data[bench] = {
            d: model.evaluate(suite.run(bench, d)).relative_to(base)
            for d in designs
        }
    group_keys = {
        "Cache Sensitive": "GM-sensitive",
        "Moderately Sensitive": "GM-moderate",
        "Cache Insensitive": "GM-insensitive",
    }
    for label, benches in group_rows():
        present = [b for b in benches if b in data]
        if present:
            data[group_keys[label]] = {
                d: geomean(data[b][d] for b in present) for d in designs
            }
    return data


def render_energy_table(
    suite: EvalSuite, designs: Sequence[str] = ("bs", "gc")
) -> str:
    data = energy_ratios(suite, designs)
    table = Table(
        ["benchmark"] + [f"{d.upper()} energy" for d in designs],
        title="Memory-system energy relative to baseline (extension)",
    )
    for _, benches in group_rows():
        for bench in benches:
            if bench in data:
                table.row([bench] + [f"{data[bench][d]:.3f}" for d in designs])
    table.rule()
    for key in ("GM-sensitive", "GM-moderate", "GM-insensitive"):
        if key in data:
            table.row([key] + [f"{data[key][d]:.3f}" for d in designs])
    return table.render()
