"""Paper-figure experiment harnesses.

One module per figure/table of the paper's evaluation (see DESIGN.md's
per-experiment index), plus ablations.  ``python -m repro.experiments``
regenerates everything.
"""

from repro.experiments.common import PAPER_DESIGNS, EvalSuite, sweep_optimal_pd
from repro.experiments.energy_table import energy_ratios, render_energy_table
from repro.experiments.fig2_reuse import fig2_reuse_distribution, render_fig2
from repro.experiments.fig34_size_sensitivity import (
    size_sensitivity,
    render_fig3,
    render_fig4,
)
from repro.experiments.fig8_speedup import fig8_speedups, render_fig8
from repro.experiments.fig9_missrate import fig9_miss_rates, render_fig9
from repro.experiments.fig10_64kb import (
    fig10_speedups,
    make_64kb_suite,
    render_fig10,
)
from repro.experiments.table3_bypass import table3_rows, render_table3

__all__ = [
    "EvalSuite",
    "PAPER_DESIGNS",
    "sweep_optimal_pd",
    "fig2_reuse_distribution",
    "render_fig2",
    "size_sensitivity",
    "render_fig3",
    "render_fig4",
    "fig8_speedups",
    "render_fig8",
    "fig9_miss_rates",
    "render_fig9",
    "fig10_speedups",
    "make_64kb_suite",
    "render_fig10",
    "table3_rows",
    "render_table3",
    "energy_ratios",
    "render_energy_table",
]
