"""Regenerate every paper figure/table: ``python -m repro.experiments``.

Options:
    --scale S       trace scale factor (default 1.0; 0.25 for a quick pass)
    --seed N        trace seed (default 0)
    --only NAMES    comma-separated experiment subset, e.g. "fig8,table3"
    --benchmarks B  comma-separated benchmark subset
    --jobs N        worker processes for the campaign (default: all cores;
                    1 = serial)
    --cache-dir D   persistent result-cache directory (default:
                    $REPRO_CACHE_DIR or ~/.cache/repro)
    --no-cache      bypass the persistent cache entirely (no reads/writes)
    --invalidate    drop every cached entry before running
    --manifest P    also write the run manifest JSON to P (a manifest is
                    always written into the cache directory when caching)
    --retries N     failures tolerated per task before giving up (default 2)
    --task-timeout S  per-attempt wall-clock budget, enforced under jobs>=2
    --keep-going    record failed tasks and finish the campaign (exit 1)
    --resume        skip tasks the campaign journal marks completed
                    (journal: <cache-dir>/journal.jsonl; Ctrl-C flushes a
                    partial manifest so full-scale passes are resumable)
    --ledger P      append the campaign's accuracy metrics (miss rates,
                    IPC per experiment) to the perf/accuracy ledger at P
                    (``repro analyze ledger`` queries it; docs/analysis.md)

The full campaign fans out over a process pool and is served from the
content-addressed result cache on reruns — a warm rerun skips every
simulation and only re-renders the tables.  The printed campaign summary
reports cache hit/miss counts and wall time; the manifest records them
per task.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments.common import EvalSuite
from repro.experiments.fig2_reuse import fig2_reuse_distribution, render_fig2
from repro.experiments.fig34_size_sensitivity import (
    render_fig3,
    render_fig4,
    size_sensitivity,
)
from repro.experiments.fig8_speedup import PAPER_DESIGNS, render_fig8
from repro.experiments.fig9_missrate import render_fig9
from repro.experiments.fig10_64kb import FIG10_DESIGNS, make_64kb_suite, render_fig10
from repro.experiments.table3_bypass import render_table3
from repro.runner import CampaignEngine, ResultCache

ALL_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig8", "fig9", "table3", "fig10")


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", type=str, default=",".join(ALL_EXPERIMENTS))
    parser.add_argument("--benchmarks", type=str, default="")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache (no reads or writes)",
    )
    parser.add_argument(
        "--invalidate", action="store_true",
        help="drop every cached entry before running",
    )
    parser.add_argument(
        "--manifest", type=Path, default=None,
        help="write the run manifest JSON to this path",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="failures tolerated per task before giving up (default: 2)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget (enforced under --jobs >= 2)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="record failed tasks and finish the campaign (exit code 1)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks the campaign journal records as completed",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None, metavar="PATH",
        help="append this campaign's accuracy metrics to the "
             "perf/accuracy ledger (see docs/analysis.md)",
    )
    parser.add_argument(
        "--ledger-suite", default="experiments",
        help="suite name for the ledger record",
    )
    args = parser.parse_args(argv)

    wanted = [w.strip() for w in args.only.split(",") if w.strip()]
    unknown = set(wanted) - set(ALL_EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiments: {sorted(unknown)}")
    benches = (
        [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()] or None
    )

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
        cache = ResultCache(cache_dir)
        if args.invalidate:
            dropped = cache.invalidate()
            print(f"[cache] invalidated {dropped} entries under {cache_dir}")
    journal = None
    if cache is not None and cache.enabled:
        journal = cache.root / "journal.jsonl"
        if not args.resume and journal.exists():
            journal.unlink()  # fresh campaign owns a fresh journal
    if args.resume and journal is None:
        parser.error("--resume needs a journal; it lives in the cache "
                     "directory, so drop --no-cache")
    from repro.faults import FaultPlan

    engine = CampaignEngine(
        jobs=args.jobs,
        cache=cache,
        retries=args.retries,
        task_timeout=args.task_timeout,
        keep_going=args.keep_going,
        journal=journal,
        resume=args.resume,
        faults=FaultPlan.from_env(),
        manifest_path=args.manifest,
    )

    t0 = time.time()
    suite = EvalSuite(
        benchmarks=benches, scale=args.scale, seed=args.seed, engine=engine
    )

    try:
        if "fig2" in wanted:
            print(render_fig2(fig2_reuse_distribution(
                benches, scale=args.scale, seed=args.seed, engine=engine
            )))
            print()
        if "fig3" in wanted or "fig4" in wanted:
            data = size_sensitivity(scale=args.scale, seed=args.seed, engine=engine)
            if "fig3" in wanted:
                print(render_fig3(data))
                print()
            if "fig4" in wanted:
                print(render_fig4(data))
                print()
        if {"fig8", "fig9", "table3"} & set(wanted):
            suite.run_matrix(PAPER_DESIGNS)  # one parallel campaign, three views
        if "fig8" in wanted:
            print(render_fig8(suite))
            print()
        if "fig9" in wanted:
            print(render_fig9(suite))
            print()
        if "table3" in wanted:
            print(render_table3(suite))
            print()
        if "fig10" in wanted:
            suite64 = make_64kb_suite(
                benches, scale=args.scale, seed=args.seed, engine=engine
            )
            suite64.run_matrix(FIG10_DESIGNS)
            print(render_fig10(suite64))
            print()
    except KeyboardInterrupt:
        # The engine already flushed the journal and (with --manifest) a
        # partial manifest marked interrupted; tell the user how to go on.
        print(f"\n[interrupted] {engine.counters.unique_tasks} tasks completed "
              f"and journaled; rerun with --resume to finish", file=sys.stderr)
        return 130
    except Exception:
        if not engine.failures:
            raise
        # --keep-going: failed tasks leave FAILED payload slots the
        # figure renderers cannot tabulate; fall through and report.

    if engine.failures:
        print(f"[failed] {len(engine.failures)} tasks exhausted their "
              f"{args.retries} retries:")
        for err in engine.failures:
            print(f"  {err.label}: {err.history[-1]['error']}")

    print(engine.counters.render())
    if args.manifest is not None:
        print(f"[manifest] {engine.write_manifest(args.manifest)}")
    elif cache is not None and cache.enabled:
        print(f"[manifest] {engine.write_manifest(cache.root / 'manifest-latest.json')}")
    if args.ledger is not None:
        from repro.analysis import Ledger, record_from_manifest

        record = record_from_manifest(engine.manifest(),
                                      suite=args.ledger_suite)
        Ledger(args.ledger).append(record)
        print(f"[ledger] appended {args.ledger_suite} record "
              f"({len(record['metrics'])} metrics) -> {args.ledger}")
    print(f"[done in {time.time() - t0:.1f}s]")
    return 1 if engine.failures else 0


if __name__ == "__main__":
    sys.exit(main())
