"""Regenerate every paper figure/table: ``python -m repro.experiments``.

Options:
    --scale S      trace scale factor (default 1.0; 0.25 for a quick pass)
    --seed N       trace seed (default 0)
    --only NAMES   comma-separated experiment subset, e.g. "fig8,table3"
    --benchmarks B comma-separated benchmark subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import EvalSuite
from repro.experiments.fig2_reuse import fig2_reuse_distribution, render_fig2
from repro.experiments.fig34_size_sensitivity import (
    render_fig3,
    render_fig4,
    size_sensitivity,
)
from repro.experiments.fig8_speedup import render_fig8
from repro.experiments.fig9_missrate import render_fig9
from repro.experiments.fig10_64kb import make_64kb_suite, render_fig10
from repro.experiments.table3_bypass import render_table3

ALL_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig8", "fig9", "table3", "fig10")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", type=str, default=",".join(ALL_EXPERIMENTS))
    parser.add_argument("--benchmarks", type=str, default="")
    args = parser.parse_args(argv)

    wanted = [w.strip() for w in args.only.split(",") if w.strip()]
    unknown = set(wanted) - set(ALL_EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiments: {sorted(unknown)}")
    benches = (
        [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()] or None
    )

    t0 = time.time()
    suite = EvalSuite(benchmarks=benches, scale=args.scale, seed=args.seed)

    if "fig2" in wanted:
        print(render_fig2(fig2_reuse_distribution(benches, scale=args.scale, seed=args.seed)))
        print()
    if "fig3" in wanted or "fig4" in wanted:
        data = size_sensitivity(scale=args.scale, seed=args.seed)
        if "fig3" in wanted:
            print(render_fig3(data))
            print()
        if "fig4" in wanted:
            print(render_fig4(data))
            print()
    if "fig8" in wanted:
        print(render_fig8(suite))
        print()
    if "fig9" in wanted:
        print(render_fig9(suite))
        print()
    if "table3" in wanted:
        print(render_table3(suite))
        print()
    if "fig10" in wanted:
        suite64 = make_64kb_suite(benches, scale=args.scale, seed=args.seed)
        print(render_fig10(suite64))
        print()
    print(f"[done in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
