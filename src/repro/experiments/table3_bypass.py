"""Table 3: bypass ratios of G-Cache and SPDP-B, plus SPDP-B's optimal PD.

Shape targets from the paper:

* GC bypasses more than SPDP-B on SPMV (37.2 % vs 18.1 %) — GC separates
  streams from hot lines, PDP cannot.
* SPDP-B bypasses far more than GC on KMN and NW (the huge-reuse-distance
  benchmarks where long protection pays off: optimal PDs 24 and 68).
* Insensitive benchmarks bypass little under either design (FWT: 0 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import EvalSuite, group_rows
from repro.stats.report import Table, format_pct

__all__ = ["Table3Row", "table3_rows", "render_table3"]


@dataclass
class Table3Row:
    benchmark: str
    gcache_bypass_ratio: float
    spdpb_bypass_ratio: float
    optimal_pd: int


def table3_rows(suite: EvalSuite) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for _, benches in group_rows():
        for bench in benches:
            if bench not in suite.benchmarks:
                continue
            rows.append(
                Table3Row(
                    benchmark=bench,
                    gcache_bypass_ratio=suite.run(bench, "gc").l1.bypass_ratio,
                    spdpb_bypass_ratio=suite.run(bench, "spdp-b").l1.bypass_ratio,
                    optimal_pd=suite.optimal_pd(bench),
                )
            )
    return rows


def render_table3(suite: EvalSuite) -> str:
    table = Table(
        ["benchmark", "G-Cache bypass", "SPDP-B bypass", "optimal PD"],
        title="Table 3: bypass control of G-Cache and SPDP-B",
    )
    for row in table3_rows(suite):
        table.row(
            [
                row.benchmark,
                format_pct(row.gcache_bypass_ratio),
                format_pct(row.spdpb_bypass_ratio),
                str(row.optimal_pd),
            ]
        )
    return table.render()
