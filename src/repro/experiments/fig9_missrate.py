"""Figure 9: L1 miss rate of all benchmarks under every design.

The paper's reading of this figure: the Fig. 8 speedups are explained by
L1 miss-rate reductions; 3-bit SRRIP alone (BS-S) tracks the baseline;
SD1/STL/WP may show slightly *higher* miss rates under GC (bypass fires
on detected contention without profit); SD2 improves performance far
more than its tiny miss-rate delta suggests.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import PAPER_DESIGNS, EvalSuite, group_rows
from repro.stats.report import Table, format_pct

__all__ = ["fig9_miss_rates", "render_fig9"]


def fig9_miss_rates(
    suite: EvalSuite, designs: Sequence[str] = PAPER_DESIGNS
) -> Dict[str, Dict[str, float]]:
    """L1 miss rate per benchmark per design."""
    return {
        bench: {d: suite.run(bench, d).l1.miss_rate for d in designs}
        for bench in suite.benchmarks
    }


def render_fig9(suite: EvalSuite, designs: Sequence[str] = PAPER_DESIGNS) -> str:
    data = fig9_miss_rates(suite, designs)
    table = Table(
        ["benchmark"] + [d.upper() for d in designs],
        title="Figure 9: L1 miss rate",
    )
    for _, benches in group_rows():
        for bench in benches:
            if bench in data:
                table.row([bench] + [format_pct(data[bench][d]) for d in designs])
    return table.render()
